//===- obs/Trace.cpp ---------------------------------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstring>

using namespace p::obs;

const char *p::obs::traceKindName(TraceKind Kind) {
  switch (Kind) {
  case TraceKind::Send:
    return "send";
  case TraceKind::Dequeue:
    return "dequeue";
  case TraceKind::Raise:
    return "raise";
  case TraceKind::New:
    return "new";
  case TraceKind::StateEnter:
    return "state-enter";
  case TraceKind::StateExit:
    return "state-exit";
  case TraceKind::Delay:
    return "delay";
  case TraceKind::Slice:
    return "slice";
  case TraceKind::Halt:
    return "halt";
  case TraceKind::Error:
    return "error";
  case TraceKind::FaultInjected:
    return "fault-injected";
  case TraceKind::QueueOverflow:
    return "queue-overflow";
  }
  return "unknown";
}

bool p::obs::traceKindFromName(const char *Name, TraceKind &Out) {
  for (size_t K = 0; K != NumTraceKinds; ++K) {
    TraceKind Kind = static_cast<TraceKind>(K);
    if (!std::strcmp(Name, traceKindName(Kind))) {
      Out = Kind;
      return true;
    }
  }
  return false;
}

void TraceSink::record(TraceKind Kind, int32_t Machine, int32_t A,
                       int32_t B) {
  TraceEvent &E = Ring[Count % Ring.size()];
  E.TimeNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  E.Machine = Machine;
  E.A = A;
  E.B = B;
  E.Kind = Kind;
  E.Tid = Tid;
  ++Count;
}

TraceRecorder::TraceRecorder(size_t CapacityPerSink)
    : CapacityPerSink(std::max<size_t>(CapacityPerSink, 16)) {}

TraceSink &TraceRecorder::openSink() {
  std::lock_guard<std::mutex> L(Mu);
  Sinks.push_back(std::unique_ptr<TraceSink>(
      new TraceSink(static_cast<uint16_t>(Sinks.size()), CapacityPerSink)));
  return *Sinks.back();
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> L(Mu);
  std::vector<TraceEvent> Out;
  for (const auto &S : Sinks) {
    size_t N = std::min<uint64_t>(S->Count, S->Ring.size());
    // Oldest surviving entry first: when the ring wrapped, that is the
    // slot the next write would overwrite.
    size_t Start = S->Count > S->Ring.size() ? S->Count % S->Ring.size() : 0;
    for (size_t I = 0; I != N; ++I)
      Out.push_back(S->Ring[(Start + I) % S->Ring.size()]);
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.TimeNs < B.TimeNs;
                   });
  return Out;
}

std::array<uint64_t, p::obs::NumTraceKinds>
TraceRecorder::countsByKind() const {
  // Counts survive ring overwrites only while nothing was dropped;
  // when a ring wrapped, the overwritten slots are gone and the tally
  // reflects the surviving window plus the recorded() total. Exporters
  // and tests that reconcile against checker stats should assert
  // dropped() == 0 first (see obs tests).
  std::array<uint64_t, NumTraceKinds> Counts{};
  for (const TraceEvent &E : snapshot())
    ++Counts[static_cast<size_t>(E.Kind)];
  return Counts;
}

uint64_t TraceRecorder::recorded() const {
  std::lock_guard<std::mutex> L(Mu);
  uint64_t N = 0;
  for (const auto &S : Sinks)
    N += S->Count;
  return N;
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> L(Mu);
  uint64_t N = 0;
  for (const auto &S : Sinks)
    N += S->dropped();
  return N;
}

size_t TraceRecorder::sinkCount() const {
  std::lock_guard<std::mutex> L(Mu);
  return Sinks.size();
}
