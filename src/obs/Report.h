//===- obs/Report.h - Unified run reports ----------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One self-contained artifact per tool run: `--report out` on a bench
/// or example writes `out.json` + `out.html` combining every layer's
/// view of the run — CheckStats, the search profile (obs/Profile.h),
/// structural coverage with *named* uncovered transitions (the dead-
/// handler report), a live Host's latency/queue metrics, and a
/// Prometheus metrics dump.
///
/// The JSON carries a schema tag ("p-run-report-v1") and is validated
/// by validateRunReport before it is written, the same contract
/// obs/BenchJson.h gives `--json`: a report a binary managed to write
/// is schema-valid by construction. The HTML is a single
/// dependency-free file (inline CSS, no scripts) rendered from the
/// same JSON.
///
//===----------------------------------------------------------------------===//

#ifndef P_OBS_REPORT_H
#define P_OBS_REPORT_H

#include "obs/Json.h"

#include <string>

namespace p {
class Host;
struct CheckResult;
struct CompiledProgram;
struct CoverageReport;
} // namespace p

namespace p::obs {

class MetricsRegistry;

/// Renders structural coverage with names resolved from \p Prog:
/// per-machine covered/total counts, unreached state names, and every
/// uncovered (state, event) pair that *has* a handler — after an
/// exhausted search those are dead handlers. Machine types the run
/// never instantiated are skipped.
Json coverageToJson(const CompiledProgram &Prog, const CoverageReport &Cov);

/// Renders a live Host's observability surface: delivery counters,
/// events/sec, queue-depth high-water marks, and the enqueue→dispatch
/// latency histogram with p50/p99.
Json hostToJson(const Host &H);

/// Collects one tool run's layers and writes the report pair.
class RunReport {
public:
  explicit RunReport(std::string Tool) : Tool(std::move(Tool)) {}

  /// Adds a check() run: config + stats always; profile and coverage
  /// when the result carries them; error details when one was found.
  void addCheckRun(const CompiledProgram &Prog, Json Config,
                   const CheckResult &R);

  /// Attaches a live host's metrics section (replaces any previous).
  void setHost(const Host &H);

  /// Attaches a Prometheus text dump of \p Registry.
  void setMetrics(const MetricsRegistry &Registry);

  /// The report document (schema "p-run-report-v1").
  Json json() const;

  /// The report as one dependency-free HTML page.
  std::string html() const;

  /// Validates the document and writes `<Base>.json` + `<Base>.html`
  /// (a trailing .json/.html on \p Base is stripped first). Returns
  /// false — with the reason in \p Why when non-null — on a schema
  /// violation or I/O error; callers treat that as a fatal tool error.
  bool writeTo(const std::string &Base, std::string *Why = nullptr) const;

private:
  std::string Tool;
  Json Runs = Json::array();
  Json HostJson;    ///< Null until setHost.
  Json MetricsText; ///< Null until setMetrics.
};

/// Validates one coverage block (the array coverageToJson produces);
/// \p At prefixes the failure reason. Shared by validateRunReport and
/// obs/BenchJson.h's validateBenchReport.
bool validateCoverageJson(const Json &Cov, std::string &Why,
                          const std::string &At = "");

/// Schema check for a parsed run report: schema tag, tool name, a runs
/// array whose records carry config/stats (with the checker stat keys)
/// and well-formed optional profile/coverage blocks, and — when a host
/// section is present — a dispatch_latency object with numeric
/// p50_seconds/p99_seconds. An empty runs array is only valid when a
/// host section is present (host-only tools). On failure returns false
/// with a human-readable reason in \p Why.
bool validateRunReport(const Json &Report, std::string &Why);

} // namespace p::obs

#endif // P_OBS_REPORT_H
