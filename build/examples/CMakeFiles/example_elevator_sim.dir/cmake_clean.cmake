file(REMOVE_RECURSE
  "CMakeFiles/example_elevator_sim.dir/elevator_sim.cpp.o"
  "CMakeFiles/example_elevator_sim.dir/elevator_sim.cpp.o.d"
  "example_elevator_sim"
  "example_elevator_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_elevator_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
