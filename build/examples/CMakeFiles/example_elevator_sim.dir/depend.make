# Empty dependencies file for example_elevator_sim.
# This may be replaced when dependencies are built.
