# Empty dependencies file for example_german_verify.
# This may be replaced when dependencies are built.
