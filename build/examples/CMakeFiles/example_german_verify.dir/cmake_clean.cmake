file(REMOVE_RECURSE
  "CMakeFiles/example_german_verify.dir/german_verify.cpp.o"
  "CMakeFiles/example_german_verify.dir/german_verify.cpp.o.d"
  "example_german_verify"
  "example_german_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_german_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
