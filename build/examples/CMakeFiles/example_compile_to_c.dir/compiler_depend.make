# Empty compiler generated dependencies file for example_compile_to_c.
# This may be replaced when dependencies are built.
