file(REMOVE_RECURSE
  "CMakeFiles/example_compile_to_c.dir/compile_to_c.cpp.o"
  "CMakeFiles/example_compile_to_c.dir/compile_to_c.cpp.o.d"
  "example_compile_to_c"
  "example_compile_to_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_compile_to_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
