# Empty dependencies file for example_pc.
# This may be replaced when dependencies are built.
