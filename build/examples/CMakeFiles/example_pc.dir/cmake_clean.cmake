file(REMOVE_RECURSE
  "CMakeFiles/example_pc.dir/pc.cpp.o"
  "CMakeFiles/example_pc.dir/pc.cpp.o.d"
  "example_pc"
  "example_pc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
