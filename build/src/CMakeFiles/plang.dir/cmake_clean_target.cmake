file(REMOVE_RECURSE
  "libplang.a"
)
