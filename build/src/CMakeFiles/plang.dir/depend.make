# Empty dependencies file for plang.
# This may be replaced when dependencies are built.
