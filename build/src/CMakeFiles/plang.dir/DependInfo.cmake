
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/AST.cpp" "src/CMakeFiles/plang.dir/ast/AST.cpp.o" "gcc" "src/CMakeFiles/plang.dir/ast/AST.cpp.o.d"
  "/root/repo/src/checker/Checker.cpp" "src/CMakeFiles/plang.dir/checker/Checker.cpp.o" "gcc" "src/CMakeFiles/plang.dir/checker/Checker.cpp.o.d"
  "/root/repo/src/checker/Liveness.cpp" "src/CMakeFiles/plang.dir/checker/Liveness.cpp.o" "gcc" "src/CMakeFiles/plang.dir/checker/Liveness.cpp.o.d"
  "/root/repo/src/checker/Replay.cpp" "src/CMakeFiles/plang.dir/checker/Replay.cpp.o" "gcc" "src/CMakeFiles/plang.dir/checker/Replay.cpp.o.d"
  "/root/repo/src/checker/StateHash.cpp" "src/CMakeFiles/plang.dir/checker/StateHash.cpp.o" "gcc" "src/CMakeFiles/plang.dir/checker/StateHash.cpp.o.d"
  "/root/repo/src/codegen/CCodeGen.cpp" "src/CMakeFiles/plang.dir/codegen/CCodeGen.cpp.o" "gcc" "src/CMakeFiles/plang.dir/codegen/CCodeGen.cpp.o.d"
  "/root/repo/src/corpus/Elevator.cpp" "src/CMakeFiles/plang.dir/corpus/Elevator.cpp.o" "gcc" "src/CMakeFiles/plang.dir/corpus/Elevator.cpp.o.d"
  "/root/repo/src/corpus/German.cpp" "src/CMakeFiles/plang.dir/corpus/German.cpp.o" "gcc" "src/CMakeFiles/plang.dir/corpus/German.cpp.o.d"
  "/root/repo/src/corpus/SwitchLed.cpp" "src/CMakeFiles/plang.dir/corpus/SwitchLed.cpp.o" "gcc" "src/CMakeFiles/plang.dir/corpus/SwitchLed.cpp.o.d"
  "/root/repo/src/corpus/UsbHub.cpp" "src/CMakeFiles/plang.dir/corpus/UsbHub.cpp.o" "gcc" "src/CMakeFiles/plang.dir/corpus/UsbHub.cpp.o.d"
  "/root/repo/src/frontend/Frontend.cpp" "src/CMakeFiles/plang.dir/frontend/Frontend.cpp.o" "gcc" "src/CMakeFiles/plang.dir/frontend/Frontend.cpp.o.d"
  "/root/repo/src/host/Host.cpp" "src/CMakeFiles/plang.dir/host/Host.cpp.o" "gcc" "src/CMakeFiles/plang.dir/host/Host.cpp.o.d"
  "/root/repo/src/lexer/Lexer.cpp" "src/CMakeFiles/plang.dir/lexer/Lexer.cpp.o" "gcc" "src/CMakeFiles/plang.dir/lexer/Lexer.cpp.o.d"
  "/root/repo/src/parser/Parser.cpp" "src/CMakeFiles/plang.dir/parser/Parser.cpp.o" "gcc" "src/CMakeFiles/plang.dir/parser/Parser.cpp.o.d"
  "/root/repo/src/pir/Dot.cpp" "src/CMakeFiles/plang.dir/pir/Dot.cpp.o" "gcc" "src/CMakeFiles/plang.dir/pir/Dot.cpp.o.d"
  "/root/repo/src/pir/Lowering.cpp" "src/CMakeFiles/plang.dir/pir/Lowering.cpp.o" "gcc" "src/CMakeFiles/plang.dir/pir/Lowering.cpp.o.d"
  "/root/repo/src/pir/Program.cpp" "src/CMakeFiles/plang.dir/pir/Program.cpp.o" "gcc" "src/CMakeFiles/plang.dir/pir/Program.cpp.o.d"
  "/root/repo/src/runtime/Executor.cpp" "src/CMakeFiles/plang.dir/runtime/Executor.cpp.o" "gcc" "src/CMakeFiles/plang.dir/runtime/Executor.cpp.o.d"
  "/root/repo/src/sema/Sema.cpp" "src/CMakeFiles/plang.dir/sema/Sema.cpp.o" "gcc" "src/CMakeFiles/plang.dir/sema/Sema.cpp.o.d"
  "/root/repo/src/support/Diagnostics.cpp" "src/CMakeFiles/plang.dir/support/Diagnostics.cpp.o" "gcc" "src/CMakeFiles/plang.dir/support/Diagnostics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
