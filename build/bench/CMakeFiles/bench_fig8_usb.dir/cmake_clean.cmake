file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_usb.dir/bench_fig8_usb.cpp.o"
  "CMakeFiles/bench_fig8_usb.dir/bench_fig8_usb.cpp.o.d"
  "bench_fig8_usb"
  "bench_fig8_usb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_usb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
