# Empty dependencies file for bench_fig7_delaybound.
# This may be replaced when dependencies are built.
