file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_delaybound.dir/bench_fig7_delaybound.cpp.o"
  "CMakeFiles/bench_fig7_delaybound.dir/bench_fig7_delaybound.cpp.o.d"
  "bench_fig7_delaybound"
  "bench_fig7_delaybound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_delaybound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
