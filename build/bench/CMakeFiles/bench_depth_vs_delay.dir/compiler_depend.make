# Empty compiler generated dependencies file for bench_depth_vs_delay.
# This may be replaced when dependencies are built.
