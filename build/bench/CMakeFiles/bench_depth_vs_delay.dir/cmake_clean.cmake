file(REMOVE_RECURSE
  "CMakeFiles/bench_depth_vs_delay.dir/bench_depth_vs_delay.cpp.o"
  "CMakeFiles/bench_depth_vs_delay.dir/bench_depth_vs_delay.cpp.o.d"
  "bench_depth_vs_delay"
  "bench_depth_vs_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_depth_vs_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
