
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/checker_test.cpp" "tests/CMakeFiles/plang_tests.dir/checker_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/checker_test.cpp.o.d"
  "/root/repo/tests/codegen_test.cpp" "tests/CMakeFiles/plang_tests.dir/codegen_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/codegen_test.cpp.o.d"
  "/root/repo/tests/corpus_elevator_test.cpp" "tests/CMakeFiles/plang_tests.dir/corpus_elevator_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/corpus_elevator_test.cpp.o.d"
  "/root/repo/tests/corpus_german_test.cpp" "tests/CMakeFiles/plang_tests.dir/corpus_german_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/corpus_german_test.cpp.o.d"
  "/root/repo/tests/corpus_roundtrip_test.cpp" "tests/CMakeFiles/plang_tests.dir/corpus_roundtrip_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/corpus_roundtrip_test.cpp.o.d"
  "/root/repo/tests/corpus_usbhub_test.cpp" "tests/CMakeFiles/plang_tests.dir/corpus_usbhub_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/corpus_usbhub_test.cpp.o.d"
  "/root/repo/tests/cross_backend_test.cpp" "tests/CMakeFiles/plang_tests.dir/cross_backend_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/cross_backend_test.cpp.o.d"
  "/root/repo/tests/erasure_test.cpp" "tests/CMakeFiles/plang_tests.dir/erasure_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/erasure_test.cpp.o.d"
  "/root/repo/tests/executor_edge_test.cpp" "tests/CMakeFiles/plang_tests.dir/executor_edge_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/executor_edge_test.cpp.o.d"
  "/root/repo/tests/host_test.cpp" "tests/CMakeFiles/plang_tests.dir/host_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/host_test.cpp.o.d"
  "/root/repo/tests/host_threading_test.cpp" "tests/CMakeFiles/plang_tests.dir/host_threading_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/host_threading_test.cpp.o.d"
  "/root/repo/tests/lexer_test.cpp" "tests/CMakeFiles/plang_tests.dir/lexer_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/lexer_test.cpp.o.d"
  "/root/repo/tests/liveness_test.cpp" "tests/CMakeFiles/plang_tests.dir/liveness_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/liveness_test.cpp.o.d"
  "/root/repo/tests/lowering_test.cpp" "tests/CMakeFiles/plang_tests.dir/lowering_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/lowering_test.cpp.o.d"
  "/root/repo/tests/parser_test.cpp" "tests/CMakeFiles/plang_tests.dir/parser_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/parser_test.cpp.o.d"
  "/root/repo/tests/pipeline_smoke_test.cpp" "tests/CMakeFiles/plang_tests.dir/pipeline_smoke_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/pipeline_smoke_test.cpp.o.d"
  "/root/repo/tests/property_sweep_test.cpp" "tests/CMakeFiles/plang_tests.dir/property_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/property_sweep_test.cpp.o.d"
  "/root/repo/tests/runtime_semantics_test.cpp" "tests/CMakeFiles/plang_tests.dir/runtime_semantics_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/runtime_semantics_test.cpp.o.d"
  "/root/repo/tests/sema_test.cpp" "tests/CMakeFiles/plang_tests.dir/sema_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/sema_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/plang_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/tooling_test.cpp" "tests/CMakeFiles/plang_tests.dir/tooling_test.cpp.o" "gcc" "tests/CMakeFiles/plang_tests.dir/tooling_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/plang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
