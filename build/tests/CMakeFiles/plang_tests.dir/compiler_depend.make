# Empty compiler generated dependencies file for plang_tests.
# This may be replaced when dependencies are built.
