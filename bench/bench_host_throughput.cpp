//===- bench/bench_host_throughput.cpp - Host event-path throughput ---------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The server-class host question: how many external events per second
// can the runtime ingest and dispatch? Two pumps over the same corpus
// program (corpus::pubSub — a real Broker fanning every Publish out to
// N real Subscribers):
//
//   * serial  — the classic mutex-guarded path: every addEvent takes
//     PumpMutex and runs the system to completion inline (the paper's
//     per-machine-lock KMDF discipline collapsed onto one lock).
//   * reactor — Host::startReactor: per-machine lock-free MPSC
//     mailboxes, a worker pool running ready machines, a timer-wheel
//     tick thread. Producers only CAS into a ring and return.
//
// P producer threads each publish E uniquely-numbered messages (⊎
// dedup eats identical payloads, so the sequence number is load-bearing)
// and the clock stops at quiescence — delivered throughput, not
// acceptance throughput. p50/p99 enqueue→dispatch latency comes from
// the host's dispatch-latency histogram.
//
// The ≥5× reactor/serial target from the issue assumes a multi-core
// box; on a single hardware thread the reactor cannot beat a perfectly
// uncontended mutex, so the speedup is reported, not asserted. CI gates
// on an absolute events/sec floor instead (--min-events-per-sec).
//
// --json emits the stable bench-report schema (obs/BenchJson.h, free-
// form stats); --quick shrinks the load for smoke tests; --report
// writes the run-report pair with this bench's live host section.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "frontend/Frontend.h"
#include "host/Host.h"
#include "obs/BenchJson.h"
#include "obs/Report.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace p;

namespace {

int WorkersFlag = 0;      ///< --workers N: reactor workers (0 = cores).
int ProducersFlag = 4;    ///< --producers N: load-generator threads.
int EventsFlag = 0;       ///< --events N per producer (0 = default).
int SubsFlag = 4;         ///< --subs N: subscribers behind the broker.
bool QuickFlag = false;   ///< --quick: small load for smoke tests.
std::string JsonPath;     ///< --json <file|->; empty = no report.
std::string ReportPath;   ///< --report <base>: <base>.{json,html}.
double MinEps = 0;        ///< --min-events-per-sec X: CI floor (0 = off).
std::string ModeFlag = "both"; ///< --mode serial|reactor|both.
std::FILE *Human = stdout;

obs::BenchReport Report("host_throughput");

CompiledProgram compileOrExit(const std::string &Src) {
  LowerOptions Opts;
  Opts.EraseGhosts = true; // pubSub has no ghosts; erase for parity.
  CompileResult R = compileString(Src, Opts);
  if (!R.ok()) {
    std::fprintf(stderr, "compile error:\n%s", R.Diags.str().c_str());
    std::exit(1);
  }
  return std::move(*R.Program);
}

struct ModeResult {
  double Seconds = 0;
  uint64_t Delivered = 0;
  double EventsPerSec = 0;
  double P50 = 0, P99 = 0;
  uint64_t Slices = 0;
  uint64_t Spills = 0;
  uint64_t LatencyDropped = 0;
  uint64_t HighWater = 0;
  bool Failed = false;
};

/// One measured run; \p OutHost receives the (stopped) host when the
/// caller wants its metrics for a run report.
ModeResult runMode(bool UseReactor, const CompiledProgram &Prog,
                   std::unique_ptr<Host> *OutHost) {
  auto H = std::make_unique<Host>(Prog);
  int32_t Broker = H->createMachine("Broker");
  if (Broker < 0 || !H->runToCompletion()) {
    std::fprintf(stderr, "broker setup failed\n");
    std::exit(1);
  }
  if (UseReactor) {
    ReactorOptions O;
    O.Workers = WorkersFlag;
    H->startReactor(O);
  }

  const int PerProducer = EventsFlag;
  std::atomic<int> Failures{0};
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Producers;
  for (int P = 0; P != ProducersFlag; ++P)
    Producers.emplace_back([&, P] {
      for (int I = 0; I != PerProducer; ++I) {
        // Unique payload per message: ⊎ would coalesce repeats.
        Value Seq = Value::integer(static_cast<int64_t>(P) * PerProducer + I);
        if (!H->addEvent(Broker, "Publish", Seq)) {
          Failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  for (std::thread &T : Producers)
    T.join();
  H->runToCompletion(); // The clock covers dispatch, not just ingress.
  auto T1 = std::chrono::steady_clock::now();
  if (UseReactor)
    H->stopReactor();

  ModeResult R;
  R.Failed = Failures.load() != 0 || H->hasError();
  if (H->hasError())
    std::fprintf(stderr, "error configuration: %s (%s)\n",
                 errorKindName(H->error()), H->errorMessage().c_str());
  R.Seconds = std::chrono::duration<double>(T1 - T0).count();
  const HostStats &S = H->stats();
  R.Delivered = S.EventsDelivered;
  R.EventsPerSec = R.Seconds > 0
                       ? static_cast<double>(R.Delivered) / R.Seconds
                       : 0;
  R.P50 = obs::histogramQuantile(H->dispatchLatency(), 0.5);
  R.P99 = obs::histogramQuantile(H->dispatchLatency(), 0.99);
  R.Slices = S.SlicesRun;
  R.Spills = S.MailboxSpills;
  R.LatencyDropped = S.LatencyDropped;
  R.HighWater = S.QueueDepthHighWater;
  if (OutHost)
    *OutHost = std::move(H);
  return R;
}

void record(const char *Mode, const ModeResult &R) {
  if (JsonPath.empty())
    return;
  obs::Json Config = obs::Json::object();
  Config.set("program", "pubsub");
  Config.set("subscribers", SubsFlag);
  Config.set("mode", Mode);
  Config.set("producers", ProducersFlag);
  Config.set("events_per_producer", EventsFlag);
  Config.set("reactor_workers", WorkersFlag);
  Config.set("hardware_concurrency",
             static_cast<int>(std::thread::hardware_concurrency()));
  obs::Json Stats = obs::Json::object();
  Stats.set("events_delivered", R.Delivered);
  Stats.set("events_per_sec", R.EventsPerSec);
  Stats.set("dispatch_p50_seconds", R.P50);
  Stats.set("dispatch_p99_seconds", R.P99);
  Stats.set("slices_run", R.Slices);
  Stats.set("mailbox_spills", R.Spills);
  Stats.set("latency_dropped", R.LatencyDropped);
  Stats.set("queue_depth_highwater", R.HighWater);
  Report.addRun(std::move(Config), std::move(Stats), R.Seconds);
}

void printRow(const char *Mode, const ModeResult &R) {
  std::fprintf(Human, "%-8s %-12llu %-14.0f %-12.2f %-12.2f %-10llu %s\n",
               Mode, static_cast<unsigned long long>(R.Delivered),
               R.EventsPerSec, R.P50 * 1e6, R.P99 * 1e6,
               static_cast<unsigned long long>(R.Slices),
               R.Failed ? "FAILED" : "");
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--workers") && I + 1 < argc)
      WorkersFlag = std::atoi(argv[++I]);
    else if (!std::strcmp(argv[I], "--producers") && I + 1 < argc)
      ProducersFlag = std::atoi(argv[++I]);
    else if (!std::strcmp(argv[I], "--events") && I + 1 < argc)
      EventsFlag = std::atoi(argv[++I]);
    else if (!std::strcmp(argv[I], "--subs") && I + 1 < argc)
      SubsFlag = std::atoi(argv[++I]);
    else if (!std::strcmp(argv[I], "--json") && I + 1 < argc)
      JsonPath = argv[++I];
    else if (!std::strcmp(argv[I], "--report") && I + 1 < argc)
      ReportPath = argv[++I];
    else if (!std::strcmp(argv[I], "--mode") && I + 1 < argc)
      ModeFlag = argv[++I];
    else if (!std::strcmp(argv[I], "--min-events-per-sec") && I + 1 < argc)
      MinEps = std::atof(argv[++I]);
    else if (!std::strcmp(argv[I], "--quick"))
      QuickFlag = true;
  }
  if (JsonPath == "-")
    Human = stderr; // Keep stdout machine-clean for the report.
  if (ProducersFlag < 1)
    ProducersFlag = 1;
  if (EventsFlag <= 0)
    EventsFlag = QuickFlag ? 2000 : 25000;

  CompiledProgram Prog = compileOrExit(corpus::pubSub(SubsFlag));

  std::fprintf(Human,
               "=== Host throughput: pubsub (%d subscribers), %d "
               "producers x %d events, %u hardware threads ===\n",
               SubsFlag, ProducersFlag, EventsFlag,
               std::thread::hardware_concurrency());
  std::fprintf(Human, "%-8s %-12s %-14s %-12s %-12s %-10s %s\n", "mode",
               "delivered", "events/sec", "p50_us", "p99_us", "slices",
               "note");

  ModeResult Serial, Reactor;
  bool RanSerial = ModeFlag == "serial" || ModeFlag == "both";
  bool RanReactor = ModeFlag == "reactor" || ModeFlag == "both";
  std::unique_ptr<Host> ReportHost;

  if (RanSerial) {
    Serial = runMode(/*UseReactor=*/false, Prog,
                     RanReactor ? nullptr : &ReportHost);
    printRow("serial", Serial);
    record("serial", Serial);
  }
  if (RanReactor) {
    Reactor = runMode(/*UseReactor=*/true, Prog, &ReportHost);
    printRow("reactor", Reactor);
    record("reactor", Reactor);
  }
  if (RanSerial && RanReactor && Serial.EventsPerSec > 0)
    std::fprintf(Human, "speedup (reactor/serial): %.2fx%s\n",
                 Reactor.EventsPerSec / Serial.EventsPerSec,
                 std::thread::hardware_concurrency() <= 1
                     ? "  (1-core host: no parallel speedup available)"
                     : "");

  if (Serial.Failed || Reactor.Failed)
    return 1;
  if (!JsonPath.empty() && !Report.writeTo(JsonPath)) {
    std::fprintf(stderr, "cannot write JSON report to %s\n",
                 JsonPath.c_str());
    return 1;
  }
  if (!ReportPath.empty()) {
    obs::RunReport RunRep("host_throughput");
    obs::MetricsRegistry Registry;
    if (ReportHost) {
      ReportHost->exportMetrics(Registry);
      RunRep.setHost(*ReportHost);
      RunRep.setMetrics(Registry);
    }
    std::string Why;
    if (!RunRep.writeTo(ReportPath, &Why)) {
      std::fprintf(stderr, "cannot write run report: %s\n", Why.c_str());
      return 1;
    }
  }
  const double Measured =
      RanReactor ? Reactor.EventsPerSec : Serial.EventsPerSec;
  if (MinEps > 0 && Measured < MinEps) {
    std::fprintf(stderr,
                 "FAIL: %.0f events/sec below the %.0f floor\n", Measured,
                 MinEps);
    return 1;
  }
  return 0;
}
