//===- bench/bench_fault_injection.cpp - Bounded-fault exploration ----------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The fault-budget axis of the checker, measured the way Figure 7
// measures the delay-bound axis. The paper's delaying scheduler bounds
// how often the *scheduler* may misbehave; the fault layer (DESIGN.md
// "Fault model") bounds how often the *transport* may misbehave — drop
// or duplicate a queued event — with the same budget trick, so the
// product exploration stays finite.
//
// Two tables:
//
//   * cost: German (2 clients) at a fixed delay bound, fault budget
//     k = 0, 1, 2. Budget 0 must cost exactly what the fault-free
//     checker costs (the layer erases itself); each +1 multiplies the
//     explored space, which is the price of a stronger adversary.
//     German's unhandled duplicated-grant surfaces here as real errors
//     found (StopOnFirstError=false keeps the sweep exhaustive).
//
//   * payoff: the seeded droppable-InvAck bug (Home's Idle handles a
//     stale InvAck whose CountAck asserts AcksNeeded > 0) is invisible
//     to any delay bound at budget 0 — no fault-free execution delivers
//     an InvAck in Idle — and found immediately with one duplicated
//     InvAck at budget 1.
//
// --json emits the stable bench-report schema (obs/BenchJson.h);
// --quick shrinks the sweep for smoke tests; --workers N as in the
// Figure 7 harness (fault exploration is worker-count deterministic).
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"
#include "host/LatencyProbe.h"
#include "obs/BenchJson.h"
#include "obs/Report.h"
#include "support/Interrupt.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace p;

namespace {

int WorkersFlag = 1;     ///< --workers N (0 = hardware_concurrency).
bool QuickFlag = false;  ///< --quick: small sweep for smoke tests.
std::string JsonPath;    ///< --json <file|->; empty = no report.
std::string ReportPath;  ///< --report <base>: <base>.{json,html}.
std::FILE *Human = stdout;
Reduction ReduceFlag = Reduction::Off; ///< --reduction off|sleep|symmetry|both.
std::string CheckpointBase;        ///< --checkpoint <base>: per-run files.
double CheckpointIntervalFlag = 30; ///< --checkpoint-interval seconds.
bool ResumeFlag = false;           ///< --resume: continue per-run files.

obs::BenchReport Report("fault_injection");
obs::RunReport RunRep("fault_injection");

/// Per-run checkpoint files (<base>.<slug>.ckpt): an interrupted sweep
/// re-run with --resume reloads completed runs instantly and continues
/// the interrupted one. --resume only resumes files that exist.
void installCrashSafety(CheckOptions &Opts, const std::string &RunSlug) {
  Opts.InterruptFlag = &interrupt::flag();
  if (CheckpointBase.empty())
    return;
  Opts.CheckpointPath = CheckpointBase + "." + RunSlug + ".ckpt";
  Opts.CheckpointIntervalSeconds = CheckpointIntervalFlag;
  if (ResumeFlag) {
    if (std::FILE *F = std::fopen(Opts.CheckpointPath.c_str(), "rb")) {
      std::fclose(F);
      Opts.Resume = true;
    }
  }
}

/// Failed resumes are hard errors (exit 3, never a silent restart);
/// interrupts flush the partial report rows (atomic writes) and exit
/// 128+signal after a partial-stats block on stderr.
void handleRunExit(const CheckResult &R) {
  if (!R.ResumeError.empty()) {
    std::fprintf(stderr, "resume failed: %s\n", R.ResumeError.c_str());
    std::exit(3);
  }
  if (!R.Stats.Interrupted)
    return;
  if (!JsonPath.empty())
    Report.writeTo(JsonPath);
  if (!ReportPath.empty())
    writeReportWithProbe(RunRep, ReportPath);
  interrupt::printInterruptedStats(R.Stats);
  std::exit(interrupt::exitCode());
}

CompiledProgram compileOrExit(const std::string &Src) {
  CompileResult R = compileString(Src);
  if (!R.ok()) {
    std::fprintf(stderr, "compile error:\n%s", R.Diags.str().c_str());
    std::exit(1);
  }
  return std::move(*R.Program);
}

Reduction parseReductionOrExit(const char *S) {
  Reduction R;
  if (parseReduction(S, R))
    return R;
  std::fprintf(stderr, "unknown --reduction '%s' (off|sleep|symmetry|both)\n",
               S);
  std::exit(2);
}

int32_t eventId(const CompiledProgram &Prog, const char *Name) {
  for (size_t I = 0; I != Prog.Events.size(); ++I)
    if (Prog.Events[I].Name == Name)
      return static_cast<int32_t>(I);
  std::fprintf(stderr, "no event named %s\n", Name);
  std::exit(1);
}

void record(const char *Slug, int DelayBound, int Budget, uint64_t NodeCap,
            const CompiledProgram &Prog, const CheckResult &R) {
  if (JsonPath.empty() && ReportPath.empty())
    return;
  obs::Json Config = obs::Json::object();
  Config.set("program", Slug);
  Config.set("delay_bound", DelayBound);
  Config.set("fault_budget", Budget);
  Config.set("node_cap", NodeCap);
  Config.set("workers", WorkersFlag);
  Config.set("reduction", reductionName(ReduceFlag));
  if (!ReportPath.empty())
    RunRep.addCheckRun(Prog, Config, R);
  if (!JsonPath.empty())
    Report.addRun(std::move(Config), Prog, R);
}

/// Coverage/profile whenever a machine-readable artifact is requested;
/// the profile's faults_used histogram and fault_kinds block are the
/// fault-site coverage a report cites.
void installObs(CheckOptions &Opts) {
  Opts.TrackCoverage = !JsonPath.empty() || !ReportPath.empty();
  Opts.Profile = !ReportPath.empty();
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--workers") && I + 1 < argc)
      WorkersFlag = std::atoi(argv[++I]);
    else if (!std::strcmp(argv[I], "--json") && I + 1 < argc)
      JsonPath = argv[++I];
    else if (!std::strcmp(argv[I], "--report") && I + 1 < argc)
      ReportPath = argv[++I];
    else if (!std::strcmp(argv[I], "--reduction") && I + 1 < argc)
      ReduceFlag = parseReductionOrExit(argv[++I]);
    else if (!std::strcmp(argv[I], "--quick"))
      QuickFlag = true;
    else if (!std::strcmp(argv[I], "--checkpoint") && I + 1 < argc)
      CheckpointBase = argv[++I];
    else if (!std::strcmp(argv[I], "--checkpoint-interval") && I + 1 < argc)
      CheckpointIntervalFlag = std::atof(argv[++I]);
    else if (!std::strcmp(argv[I], "--resume"))
      ResumeFlag = true;
  }
  if (JsonPath == "-")
    Human = stderr; // Keep stdout machine-clean for the report.
  interrupt::installHandlers();

  const int DelayBound = QuickFlag ? 1 : 3;
  const uint64_t NodeCap = QuickFlag ? 100000 : 2000000;

  std::fprintf(Human,
               "=== Bounded-fault exploration: German (2 clients), "
               "d=%d, transport faults (drop+duplicate) ===\n",
               DelayBound);
  std::fprintf(Human, "%-10s %-12s %-12s %-10s %-8s %-10s %s\n",
               "budget_k", "states", "nodes", "faults", "errors",
               "seconds", "note");
  CompiledProgram German = compileOrExit(corpus::german(2));
  for (int Budget = 0; Budget <= 2; ++Budget) {
    CheckOptions Opts;
    Opts.DelayBound = DelayBound;
    Opts.MaxNodes = NodeCap;
    Opts.StopOnFirstError = false;
    Opts.Workers = WorkersFlag;
    Opts.Faults.Budget = Budget; // Drop + duplicate, the defaults.
    Opts.Reduce = ReduceFlag;
    installObs(Opts);
    installCrashSafety(Opts, "german2-k" + std::to_string(Budget));
    CheckResult R = check(German, Opts);
    handleRunExit(R);
    std::fprintf(Human, "%-10d %-12llu %-12llu %-10llu %-8llu %-10.3f %s\n",
                 Budget,
                 static_cast<unsigned long long>(R.Stats.DistinctStates),
                 static_cast<unsigned long long>(R.Stats.NodesExplored),
                 static_cast<unsigned long long>(R.Stats.FaultsInjected),
                 static_cast<unsigned long long>(R.Stats.ErrorsFound),
                 R.Stats.Seconds, R.Stats.Exhausted ? "" : "node-cap");
    record("german2", DelayBound, Budget, NodeCap, German, R);
  }

  std::fprintf(Human,
               "\n=== Seeded droppable-InvAck bug: invisible without a "
               "fault budget ===\n");
  std::fprintf(Human, "%-10s %-12s %-10s %s\n", "budget_k", "states",
               "seconds", "result");
  CompiledProgram Buggy = compileOrExit(
      corpus::german(2, corpus::GermanBug::DroppableInvAck));
  for (int Budget = 0; Budget <= 1; ++Budget) {
    CheckOptions Opts;
    Opts.DelayBound = QuickFlag ? 0 : 2;
    Opts.Workers = WorkersFlag;
    Opts.Faults.Budget = Budget;
    // Aim the adversary at the ack message so the counterexample is the
    // seeded bug, not base German's shallower duplicated-grant error.
    Opts.Faults.Drop = false;
    Opts.Faults.Duplicate = true;
    Opts.Faults.Events.push_back(eventId(Buggy, "InvAck"));
    Opts.Reduce = ReduceFlag;
    installObs(Opts);
    installCrashSafety(Opts, "droppable-invack-k" + std::to_string(Budget));
    CheckResult R = check(Buggy, Opts);
    handleRunExit(R);
    std::fprintf(Human, "%-10d %-12llu %-10.3f %s%s\n", Budget,
                 static_cast<unsigned long long>(R.Stats.DistinctStates),
                 R.Stats.Seconds,
                 R.ErrorFound ? errorKindName(R.Error)
                              : (R.Stats.Exhausted ? "clean (exhausted)"
                                                   : "clean"),
                 R.ErrorFound ? " (schedule replayable)" : "");
    record("german2_droppable_invack", Opts.DelayBound, Budget,
           Opts.MaxNodes, Buggy, R);
  }

  if (!JsonPath.empty() && !Report.writeTo(JsonPath)) {
    std::fprintf(stderr, "cannot write JSON report to %s\n",
                 JsonPath.c_str());
    return 1;
  }
  if (!ReportPath.empty() && !writeReportWithProbe(RunRep, ReportPath))
    return 1;
  return 0;
}
