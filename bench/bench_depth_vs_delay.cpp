//===- bench/bench_depth_vs_delay.cpp - Bounding-strategy ablation ----------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Section 5's motivation for delay bounding: "the complexity of depth-
// bounded search increases exponentially with execution depth, and
// consequently does not scale ... errors may be lurking in long
// executions", while a delaying scheduler reaches arbitrarily long
// executions even with a delay bound of 0.
//
// This ablation compares the two strategies on the same seeded bugs:
//   * cost (nodes/states/time) until the bug is found, and
//   * the depth bound a depth-bounded search needs before it can find
//     the bug at all (the bug sits deep in the causal execution).
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"

#include <cstdio>

using namespace p;

namespace {

CompiledProgram compileOrExit(const std::string &Src) {
  CompileResult R = compileString(Src);
  if (!R.ok()) {
    std::fprintf(stderr, "compile error:\n%s", R.Diags.str().c_str());
    std::exit(1);
  }
  return std::move(*R.Program);
}

void compareOn(const char *Name, const CompiledProgram &Prog) {
  std::printf("--- %s ---\n", Name);

  // Delay-bounded: sweep d upward.
  for (int D = 0; D <= 3; ++D) {
    CheckOptions Opts;
    Opts.DelayBound = D;
    CheckResult R = check(Prog, Opts);
    std::printf("  delay  d=%-4d %-10s nodes=%-9llu states=%-9llu "
                "%.3fs\n",
                D, R.ErrorFound ? errorKindName(R.Error) : "clean",
                static_cast<unsigned long long>(R.Stats.NodesExplored),
                static_cast<unsigned long long>(R.Stats.DistinctStates),
                R.Stats.Seconds);
    if (R.ErrorFound)
      break;
  }

  // Depth-bounded: double the depth bound until the bug appears or the
  // budget dies. Every level multiplies the schedule tree.
  for (int Depth = 8; Depth <= 256; Depth *= 2) {
    CheckOptions Opts;
    Opts.Strategy = SearchStrategy::DepthBounded;
    Opts.DepthBound = Depth;
    Opts.MaxNodes = 2000000;
    CheckResult R = check(Prog, Opts);
    bool NodeCapped = R.Stats.NodesExplored >= Opts.MaxNodes;
    std::printf("  depth  k=%-4d %-10s nodes=%-9llu states=%-9llu "
                "%.3fs%s\n",
                Depth, R.ErrorFound ? errorKindName(R.Error) : "clean",
                static_cast<unsigned long long>(R.Stats.NodesExplored),
                static_cast<unsigned long long>(R.Stats.DistinctStates),
                R.Stats.Seconds, NodeCapped ? " (node-capped)" : "");
    if (R.ErrorFound || NodeCapped || R.Stats.Seconds > 30)
      break;
  }
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("=== Ablation: depth-bounded vs delay-bounded search "
              "(Section 5) ===\n\n");
  compareOn("elevator / missing-defer-close",
            compileOrExit(
                corpus::elevator(corpus::ElevatorBug::MissingDeferCloseDoor)));
  compareOn("elevator / missing-defer-timer",
            compileOrExit(
                corpus::elevator(corpus::ElevatorBug::MissingDeferTimerFired)));
  compareOn("german / skip-owner-invalidation",
            compileOrExit(
                corpus::german(2, corpus::GermanBug::SkipOwnerInvalidation)));
  std::printf("observation (matches the paper): the delaying scheduler "
              "reaches deep causal executions at tiny bounds,\nwhile "
              "depth-bounded search pays an exponential tree before the "
              "bug's depth is even reachable.\n");
  return 0;
}
