//===- bench/bench_depth_vs_delay.cpp - Bounding-strategy ablation ----------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Section 5's motivation for delay bounding: "the complexity of depth-
// bounded search increases exponentially with execution depth, and
// consequently does not scale ... errors may be lurking in long
// executions", while a delaying scheduler reaches arbitrarily long
// executions even with a delay bound of 0.
//
// This ablation compares the two strategies on the same seeded bugs:
//   * cost (nodes/states/time) until the bug is found, and
//   * the depth bound a depth-bounded search needs before it can find
//     the bug at all (the bug sits deep in the causal execution).
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"
#include "host/LatencyProbe.h"
#include "obs/BenchJson.h"
#include "obs/Report.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace p;

namespace {

std::string JsonPath;      ///< --json <file|->; empty = no report.
std::string ReportPath;    ///< --report <base>: <base>.{json,html}.
std::FILE *Human = stdout; ///< Tables; stderr when the JSON owns stdout.

obs::BenchReport Report("depth_vs_delay");
obs::RunReport RunRep("depth_vs_delay");

CompiledProgram compileOrExit(const std::string &Src) {
  CompileResult R = compileString(Src);
  if (!R.ok()) {
    std::fprintf(stderr, "compile error:\n%s", R.Diags.str().c_str());
    std::exit(1);
  }
  return std::move(*R.Program);
}

void addRecord(const char *Program, const char *Strategy, int Bound,
               uint64_t MaxNodes, const CompiledProgram &Prog,
               const CheckResult &R) {
  if (JsonPath.empty() && ReportPath.empty())
    return;
  obs::Json Config = obs::Json::object();
  Config.set("program", Program);
  Config.set("strategy", Strategy);
  Config.set("bound", Bound);
  Config.set("max_nodes", MaxNodes);
  if (!ReportPath.empty())
    RunRep.addCheckRun(Prog, Config, R);
  if (!JsonPath.empty())
    Report.addRun(std::move(Config), Prog, R);
}

/// Coverage/profile ride along whenever a machine-readable artifact is
/// requested; both are observers and leave counters untouched.
void installObs(CheckOptions &Opts) {
  Opts.TrackCoverage = !JsonPath.empty() || !ReportPath.empty();
  Opts.Profile = !ReportPath.empty();
}

void compareOn(const char *Name, const char *Slug,
               const CompiledProgram &Prog) {
  std::fprintf(Human, "--- %s ---\n", Name);

  // Delay-bounded: sweep d upward.
  for (int D = 0; D <= 3; ++D) {
    CheckOptions Opts;
    Opts.DelayBound = D;
    installObs(Opts);
    CheckResult R = check(Prog, Opts);
    std::fprintf(Human,
                 "  delay  d=%-4d %-10s nodes=%-9llu states=%-9llu "
                 "%.3fs\n",
                 D, R.ErrorFound ? errorKindName(R.Error) : "clean",
                 static_cast<unsigned long long>(R.Stats.NodesExplored),
                 static_cast<unsigned long long>(R.Stats.DistinctStates),
                 R.Stats.Seconds);
    addRecord(Slug, "delay", D, 0, Prog, R);
    if (R.ErrorFound)
      break;
  }

  // Depth-bounded: double the depth bound until the bug appears or the
  // budget dies. Every level multiplies the schedule tree.
  for (int Depth = 8; Depth <= 256; Depth *= 2) {
    CheckOptions Opts;
    Opts.Strategy = SearchStrategy::DepthBounded;
    Opts.DepthBound = Depth;
    Opts.MaxNodes = 2000000;
    installObs(Opts);
    CheckResult R = check(Prog, Opts);
    bool NodeCapped = R.Stats.NodesExplored >= Opts.MaxNodes;
    std::fprintf(Human,
                 "  depth  k=%-4d %-10s nodes=%-9llu states=%-9llu "
                 "%.3fs%s\n",
                 Depth, R.ErrorFound ? errorKindName(R.Error) : "clean",
                 static_cast<unsigned long long>(R.Stats.NodesExplored),
                 static_cast<unsigned long long>(R.Stats.DistinctStates),
                 R.Stats.Seconds, NodeCapped ? " (node-capped)" : "");
    addRecord(Slug, "depth", Depth, Opts.MaxNodes, Prog, R);
    if (R.ErrorFound || NodeCapped || R.Stats.Seconds > 30)
      break;
  }
  std::fprintf(Human, "\n");
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--json") && I + 1 < argc)
      JsonPath = argv[++I];
    else if (!std::strcmp(argv[I], "--report") && I + 1 < argc)
      ReportPath = argv[++I];
  }
  if (JsonPath == "-")
    Human = stderr; // Keep stdout machine-clean for the report.
  std::fprintf(Human, "=== Ablation: depth-bounded vs delay-bounded search "
                      "(Section 5) ===\n\n");
  compareOn("elevator / missing-defer-close", "elevator_defer_close",
            compileOrExit(
                corpus::elevator(corpus::ElevatorBug::MissingDeferCloseDoor)));
  compareOn("elevator / missing-defer-timer", "elevator_defer_timer",
            compileOrExit(
                corpus::elevator(corpus::ElevatorBug::MissingDeferTimerFired)));
  compareOn("german / skip-owner-invalidation", "german_skip_inval",
            compileOrExit(
                corpus::german(2, corpus::GermanBug::SkipOwnerInvalidation)));
  std::fprintf(Human,
               "observation (matches the paper): the delaying scheduler "
               "reaches deep causal executions at tiny bounds,\nwhile "
               "depth-bounded search pays an exponential tree before the "
               "bug's depth is even reachable.\n");

  if (!JsonPath.empty() && !Report.writeTo(JsonPath)) {
    std::fprintf(stderr, "cannot write JSON report to %s\n",
                 JsonPath.c_str());
    return 1;
  }
  if (!ReportPath.empty() && !writeReportWithProbe(RunRep, ReportPath))
    return 1;
  return 0;
}
