//===- bench/bench_fig8_usb.cpp - Figure 8 reproduction ---------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Figure 8: "State machine sizes and exploration time" for the USB hub
// driver machines. The paper's table (proprietary Windows 8 drivers,
// Zing, multicore, hours):
//
//   machine   P-states  P-transitions  explored(M)  time     memory(MB)
//   HSM       196       361            5.9          2:30     1712
//   PSM 3.0   295       752            1.5          3:30     1341
//   PSM 2.0   457       1386           2.2          5:30     872
//   DSM       1919      4238           1.2          5:30     1127
//
// We cannot ship Microsoft's sources; our stand-in is a synthetic
// hub/port/device stack with the same architecture (see
// src/corpus/UsbHub.cpp and DESIGN.md). This bench reports the same
// columns for our models at increasing scale, preserving the shape:
// machine sizes in the tens of states, explored configurations orders
// of magnitude beyond the static machine size, growing steeply with
// scale and delay bound.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"
#include "host/LatencyProbe.h"
#include "obs/BenchJson.h"
#include "obs/Report.h"
#include "support/Interrupt.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace p;

namespace {

int WorkersFlag = 1;       ///< --workers N (0 = hardware_concurrency).
bool ProgressFlag = false; ///< --progress: heartbeat lines on stderr.
std::string JsonPath;      ///< --json <file|->; empty = no report.
std::string ReportPath;    ///< --report <base>: <base>.{json,html}.
std::FILE *Human = stdout; ///< Tables; stderr when the JSON owns stdout.
VisitedMode VisitedFlag = VisitedMode::Fingerprint; ///< --visited-mode.
uint64_t VisitedCapFlag = 0; ///< --visited-cap bytes (Compact; 0=64MiB).
Reduction ReduceFlag = Reduction::Off; ///< --reduction off|sleep|symmetry|both.
std::string CheckpointBase;        ///< --checkpoint <base>: per-run files.
double CheckpointIntervalFlag = 30; ///< --checkpoint-interval seconds.
bool ResumeFlag = false;           ///< --resume: continue per-run files.

/// Per-run checkpoint files (<base>.<slug>.ckpt): an interrupted sweep
/// re-run with --resume reloads completed runs instantly and continues
/// the interrupted one. --resume only resumes files that exist.
void installCrashSafety(CheckOptions &Opts, const std::string &RunSlug) {
  Opts.InterruptFlag = &interrupt::flag();
  if (CheckpointBase.empty())
    return;
  Opts.CheckpointPath = CheckpointBase + "." + RunSlug + ".ckpt";
  Opts.CheckpointIntervalSeconds = CheckpointIntervalFlag;
  if (ResumeFlag) {
    if (std::FILE *F = std::fopen(Opts.CheckpointPath.c_str(), "rb")) {
      std::fclose(F);
      Opts.Resume = true;
    }
  }
}

const char *visitedModeName(VisitedMode M) {
  switch (M) {
  case VisitedMode::Exact:
    return "exact";
  case VisitedMode::Fingerprint:
    return "fingerprint";
  case VisitedMode::Compact:
    return "compact";
  }
  return "?";
}

VisitedMode parseVisitedMode(const char *S) {
  if (!std::strcmp(S, "exact"))
    return VisitedMode::Exact;
  if (!std::strcmp(S, "compact"))
    return VisitedMode::Compact;
  if (!std::strcmp(S, "fingerprint"))
    return VisitedMode::Fingerprint;
  std::fprintf(stderr,
               "unknown --visited-mode '%s' (exact|fingerprint|compact)\n",
               S);
  std::exit(2);
}

Reduction parseReductionOrExit(const char *S) {
  Reduction R;
  if (parseReduction(S, R))
    return R;
  std::fprintf(stderr, "unknown --reduction '%s' (off|sleep|symmetry|both)\n",
               S);
  std::exit(2);
}

CompiledProgram compileOrExit(const std::string &Src) {
  CompileResult R = compileString(Src);
  if (!R.ok()) {
    std::fprintf(stderr, "compile error:\n%s", R.Diags.str().c_str());
    std::exit(1);
  }
  return std::move(*R.Program);
}

void printMachineSizes(const CompiledProgram &Prog) {
  std::fprintf(Human, "%-10s %-10s %-14s\n", "machine", "P-states",
               "P-transitions");
  for (const MachineInfo &M : Prog.Machines) {
    std::fprintf(Human, "%-10s %-10zu %-14d%s\n", M.Name.c_str(),
                 M.States.size(), M.countTransitions(),
                 M.Ghost ? "  (ghost env)" : "");
  }
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--workers") && I + 1 < argc)
      WorkersFlag = std::atoi(argv[++I]);
    else if (!std::strcmp(argv[I], "--json") && I + 1 < argc)
      JsonPath = argv[++I];
    else if (!std::strcmp(argv[I], "--report") && I + 1 < argc)
      ReportPath = argv[++I];
    else if (!std::strcmp(argv[I], "--visited-mode") && I + 1 < argc)
      VisitedFlag = parseVisitedMode(argv[++I]);
    else if (!std::strcmp(argv[I], "--visited-cap") && I + 1 < argc)
      VisitedCapFlag = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--reduction") && I + 1 < argc)
      ReduceFlag = parseReductionOrExit(argv[++I]);
    else if (!std::strcmp(argv[I], "--progress"))
      ProgressFlag = true;
    else if (!std::strcmp(argv[I], "--checkpoint") && I + 1 < argc)
      CheckpointBase = argv[++I];
    else if (!std::strcmp(argv[I], "--checkpoint-interval") && I + 1 < argc)
      CheckpointIntervalFlag = std::atof(argv[++I]);
    else if (!std::strcmp(argv[I], "--resume"))
      ResumeFlag = true;
  }
  if (JsonPath == "-")
    Human = stderr; // Keep stdout machine-clean for the report.
  interrupt::installHandlers();
  obs::BenchReport Report("fig8_usb");
  obs::RunReport RunRep("fig8_usb");
  // Failed resumes are hard errors (exit 3, never a silent restart);
  // interrupts flush the partial report rows (atomic writes) and exit
  // 128+signal after a partial-stats block on stderr.
  auto handleRunExit = [&](const CheckResult &R) {
    if (!R.ResumeError.empty()) {
      std::fprintf(stderr, "resume failed: %s\n", R.ResumeError.c_str());
      std::exit(3);
    }
    if (!R.Stats.Interrupted)
      return;
    if (!JsonPath.empty())
      Report.writeTo(JsonPath);
    if (!ReportPath.empty())
      writeReportWithProbe(RunRep, ReportPath);
    interrupt::printInterruptedStats(R.Stats);
    std::exit(interrupt::exitCode());
  };

  std::fprintf(Human,
               "=== Figure 8: USB hub machine sizes and exploration cost "
               "=== (workers=%d, 0=auto)\n\n",
               WorkersFlag);
  std::fprintf(Human, "paper (Windows 8 USB stack, Zing):\n");
  std::fprintf(Human,
               "  HSM 196/361, PSM3.0 295/752, PSM2.0 457/1386, DSM "
               "1919/4238 P-states/transitions;\n");
  std::fprintf(Human, "  1.2M-5.9M explored states, 2.5h-5.5h, 0.9-1.7 GB\n\n");

  for (int Ports = 1; Ports <= 2; ++Ports) {
    std::fprintf(Human, "--- our scaled model: hub with %d port(s) ---\n",
                 Ports);
    CompiledProgram Prog = compileOrExit(corpus::usbHub(Ports));
    printMachineSizes(Prog);

    std::fprintf(Human, "%-8s %-12s %-12s %-10s %-12s %s\n", "delay_d",
                 "explored", "nodes", "seconds", "visited_KB", "exhausted");
    for (int D = 0; D <= (Ports == 1 ? 2 : 1); ++D) {
      CheckOptions Opts;
      Opts.DelayBound = D;
      Opts.MaxNodes = 600000;
      Opts.StopOnFirstError = false;
      Opts.Workers = WorkersFlag;
      Opts.Visited = VisitedFlag;
      Opts.VisitedCapBytes = VisitedCapFlag;
      Opts.Reduce = ReduceFlag;
      Opts.TrackCoverage = !JsonPath.empty() || !ReportPath.empty();
      Opts.Profile = !ReportPath.empty();
      if (ProgressFlag) {
        Opts.ProgressIntervalSeconds = 1.0;
        Opts.Progress = [](const CheckStats &S) {
          std::fprintf(
              stderr,
              "progress: %.1fs states=%llu (%.0f/s) nodes=%llu "
              "frontier=%llu visited=%.1fMB\n",
              S.Seconds, static_cast<unsigned long long>(S.DistinctStates),
              S.Seconds > 0
                  ? static_cast<double>(S.DistinctStates) / S.Seconds
                  : 0.0,
              static_cast<unsigned long long>(S.NodesExplored),
              static_cast<unsigned long long>(S.FrontierNodes),
              S.VisitedBytes / (1024.0 * 1024.0));
        };
      }
      installCrashSafety(Opts, "usbhub-p" + std::to_string(Ports) + "-d" +
                                   std::to_string(D));
      CheckResult R = check(Prog, Opts);
      std::fprintf(Human, "%-8d %-12llu %-12llu %-10.3f %-12llu %s\n", D,
                   static_cast<unsigned long long>(R.Stats.DistinctStates),
                   static_cast<unsigned long long>(R.Stats.NodesExplored),
                   R.Stats.Seconds,
                   static_cast<unsigned long long>(R.Stats.VisitedBytes /
                                                   1024),
                   R.Stats.Exhausted ? "yes" : "no (capped)");
      if (R.ErrorFound)
        std::fprintf(Human, "  !! unexpected error: %s\n",
                     R.ErrorMessage.c_str());
      if (!JsonPath.empty() || !ReportPath.empty()) {
        obs::Json Config = obs::Json::object();
        Config.set("ports", Ports);
        Config.set("delay_bound", D);
        Config.set("node_cap", 600000);
        Config.set("workers", WorkersFlag);
        Config.set("visited_mode", visitedModeName(VisitedFlag));
        Config.set("reduction", reductionName(ReduceFlag));
        if (!ReportPath.empty())
          RunRep.addCheckRun(Prog, Config, R);
        if (!JsonPath.empty())
          Report.addRun(std::move(Config), Prog, R);
      }
      handleRunExit(R);
    }
    std::fprintf(Human, "\n");
  }

  std::fprintf(Human,
               "shape check vs paper: explored configurations exceed "
               "static P-states by orders of magnitude,\n"
               "and the multi-machine interaction (ports x devices x "
               "power events) dominates the cost.\n");

  if (!JsonPath.empty() && !Report.writeTo(JsonPath)) {
    std::fprintf(stderr, "cannot write JSON report to %s\n",
                 JsonPath.c_str());
    return 1;
  }
  if (!ReportPath.empty() && !writeReportWithProbe(RunRep, ReportPath))
    return 1;
  return 0;
}
