//===- bench/bench_sec41_overhead.cpp - Section 4.1 reproduction ------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Section 4.1: "Efficiency of generated code and runtime". The paper
// builds the same switch-and-LED driver twice — once in P (driver
// machine + ghost environment, code generated to C) and once directly
// against KMDF — feeds both 100 events per second, and finds both
// process each event in ~4 ms: "the P compiler and runtime do not
// introduce additional overhead".
//
// This bench reproduces the comparison three ways:
//   1. google-benchmark: per-event cost through the C++ interpreter
//      host (our debugging/scripting path);
//   2. per-event cost of a hand-written C++ driver (the "directly using
//      KMDF" stand-in) on the same event stream;
//   3. end-to-end: generate the C code (Section 4), compile it with the
//      system C compiler at -O2 together with the portable C runtime and
//      a hand-written C driver, run both on one million events, and
//      report ns/event side by side — the paper's actual configuration.
//
//===----------------------------------------------------------------------===//

#include "codegen/CCodeGen.h"
#include "corpus/Corpus.h"
#include "fault/FaultPlan.h"
#include "frontend/Frontend.h"
#include "host/Host.h"
#include "obs/BenchJson.h"
#include "obs/Report.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

using namespace p;

namespace {

bool HasFaultSeed = false; ///< --fault-seed S given on the command line.
uint64_t FaultSeedFlag = 0;

/// The seeded adversarial transport for --fault-seed: a few percent of
/// external events dropped, duplicated or delayed. Deterministic per
/// seed, so a run is reproducible by quoting one integer.
FaultPlan sec41FaultPlan() {
  FaultPlan P;
  P.Seed = FaultSeedFlag;
  P.DropProb = 0.02;
  P.DuplicateProb = 0.02;
  P.DelayProb = 0.02;
  return P;
}

CompiledProgram &erasedSwitchLed() {
  static CompiledProgram Prog = [] {
    LowerOptions Opts;
    Opts.EraseGhosts = true;
    CompileResult R = compileString(corpus::switchLed(), Opts);
    if (!R.ok()) {
      std::fprintf(stderr, "compile error:\n%s", R.Diags.str().c_str());
      std::exit(1);
    }
    return std::move(*R.Program);
  }();
  return Prog;
}

/// One on/off cycle = 4 events (switch on, led ok, switch off, led ok).
///
/// With --fault-seed the host transport misbehaves (sec41FaultPlan), and
/// a dropped or reordered completion eventually leaves the strict driver
/// FSM facing an event it cannot handle. The "OS" half of the bench then
/// degrades gracefully — tear the driver down, bring up a fresh instance
/// — and the rebuild cost is charged to the same per-event budget, so
/// the reported rate is the cost of running *through* the faults.
void BM_PInterpreterDriver(benchmark::State &State) {
  std::optional<Host> H;
  H.emplace(erasedSwitchLed());
  if (HasFaultSeed)
    H->setFaultPlan(sec41FaultPlan());
  int32_t Id = H->createMachine("SwitchLedDriver");
  uint64_t Events = 0, Restarts = 0;
  for (auto _ : State) {
    H->addEvent(Id, "SwitchedOn");
    H->addEvent(Id, "LedOk");
    H->addEvent(Id, "SwitchedOff");
    H->addEvent(Id, "LedOk");
    Events += 4;
    if (HasFaultSeed && H->hasError()) {
      ++Restarts;
      H.emplace(erasedSwitchLed());
      H->setFaultPlan(sec41FaultPlan());
      Id = H->createMachine("SwitchLedDriver");
    }
  }
  if (H->hasError())
    State.SkipWithError(H->errorMessage().c_str());
  State.counters["events/s"] =
      benchmark::Counter(static_cast<double>(Events),
                         benchmark::Counter::kIsRate);
  if (HasFaultSeed)
    State.counters["driver restarts"] =
        benchmark::Counter(static_cast<double>(Restarts));
}
BENCHMARK(BM_PInterpreterDriver);

/// The hand-written driver: the same protocol as a plain C++ state
/// machine (what "directly using KMDF" means for control flow).
class HandwrittenDriver {
public:
  enum class St { Off, TurningOn, On, TurningOff };
  enum class Ev { SwitchedOn, SwitchedOff, LedOk, LedFailed };

  void handle(Ev E) {
    switch (S) {
    case St::Off:
      if (E == Ev::SwitchedOn) {
        Retries = 0;
        S = St::TurningOn;
        ++LedCommands;
      }
      break;
    case St::TurningOn:
      if (E == Ev::LedOk)
        S = St::On;
      else if (E == Ev::LedFailed && ++Retries >= 3)
        S = St::Off;
      else if (E == Ev::LedFailed)
        ++LedCommands;
      break;
    case St::On:
      if (E == Ev::SwitchedOff) {
        Retries = 0;
        S = St::TurningOff;
        ++LedCommands;
      }
      break;
    case St::TurningOff:
      if (E == Ev::LedOk)
        S = St::Off;
      else if (E == Ev::LedFailed && ++Retries >= 3)
        S = St::On;
      else if (E == Ev::LedFailed)
        ++LedCommands;
      break;
    }
  }

  St S = St::Off;
  int Retries = 0;
  uint64_t LedCommands = 0;
};

void BM_HandwrittenCppDriver(benchmark::State &State) {
  HandwrittenDriver D;
  uint64_t Events = 0;
  for (auto _ : State) {
    D.handle(HandwrittenDriver::Ev::SwitchedOn);
    D.handle(HandwrittenDriver::Ev::LedOk);
    D.handle(HandwrittenDriver::Ev::SwitchedOff);
    D.handle(HandwrittenDriver::Ev::LedOk);
    Events += 4;
    benchmark::DoNotOptimize(D);
  }
  State.counters["events/s"] =
      benchmark::Counter(static_cast<double>(Events),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HandwrittenCppDriver);

//===----------------------------------------------------------------------===//
// End-to-end generated-C experiment
//===----------------------------------------------------------------------===//

void writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path);
  Out << Contents;
}

int runCommand(const std::string &Cmd, std::string &Output) {
  FILE *Pipe = popen((Cmd + " 2>&1").c_str(), "r");
  if (!Pipe)
    return -1;
  char Buf[512];
  while (fgets(Buf, sizeof(Buf), Pipe))
    Output += Buf;
  return pclose(Pipe);
}

const char *GeneratedMain = R"(
#define _POSIX_C_SOURCE 199309L
#include "swled.h"
#include <stdio.h>
#include <stdlib.h>
#include <time.h>

static void on_error(PrtRuntime *rt, int mid, const char *kind,
                     const char *msg) {
  (void)rt; (void)mid;
  fprintf(stderr, "error: %s: %s\n", kind, msg);
  exit(2);
}

int main(void) {
  PrtRuntime *rt = PrtCreateRuntime(&swled_program, on_error);
  int id = PrtCreateMachine(rt, PMT_SwitchLedDriver, 0, 0, 0);
  const long long CYCLES = 250000; /* 1M events */
  struct timespec t0, t1;
  clock_gettime(CLOCK_MONOTONIC, &t0);
  for (long long i = 0; i < CYCLES; ++i) {
    PrtAddEvent(rt, id, PEV_SwitchedOn, prt_null());
    PrtAddEvent(rt, id, PEV_LedOk, prt_null());
    PrtAddEvent(rt, id, PEV_SwitchedOff, prt_null());
    PrtAddEvent(rt, id, PEV_LedOk, prt_null());
  }
  clock_gettime(CLOCK_MONOTONIC, &t1);
  double ns = (t1.tv_sec - t0.tv_sec) * 1e9 + (t1.tv_nsec - t0.tv_nsec);
  printf("ns_per_event %.1f\n", ns / (4.0 * CYCLES));
  PrtDestroyRuntime(rt);
  return 0;
}
)";

const char *HandwrittenC = R"(
#define _POSIX_C_SOURCE 199309L
#include <stdio.h>
#include <time.h>

enum st { OFF, TURNING_ON, ON, TURNING_OFF };
enum ev { SW_ON, SW_OFF, LED_OK, LED_FAILED };

struct drv { enum st s; int retries; unsigned long long cmds; };

static void handle(struct drv *d, enum ev e) {
  switch (d->s) {
  case OFF:
    if (e == SW_ON) { d->retries = 0; d->s = TURNING_ON; ++d->cmds; }
    break;
  case TURNING_ON:
    if (e == LED_OK) d->s = ON;
    else if (e == LED_FAILED && ++d->retries >= 3) d->s = OFF;
    else if (e == LED_FAILED) ++d->cmds;
    break;
  case ON:
    if (e == SW_OFF) { d->retries = 0; d->s = TURNING_OFF; ++d->cmds; }
    break;
  case TURNING_OFF:
    if (e == LED_OK) d->s = OFF;
    else if (e == LED_FAILED && ++d->retries >= 3) d->s = ON;
    else if (e == LED_FAILED) ++d->cmds;
    break;
  }
}

int main(void) {
  struct drv d = {OFF, 0, 0};
  const long long CYCLES = 250000;
  struct timespec t0, t1;
  clock_gettime(CLOCK_MONOTONIC, &t0);
  for (long long i = 0; i < CYCLES; ++i) {
    handle(&d, SW_ON);
    handle(&d, LED_OK);
    handle(&d, SW_OFF);
    handle(&d, LED_OK);
    /* Keep the optimizer from folding the whole FSM to a constant. */
    __asm__ volatile("" : "+m"(d));
  }
  clock_gettime(CLOCK_MONOTONIC, &t1);
  double ns = (t1.tv_sec - t0.tv_sec) * 1e9 + (t1.tv_nsec - t0.tv_nsec);
  printf("ns_per_event %.1f (cmds %llu)\n", ns / (4.0 * CYCLES), d.cmds);
  return 0;
}
)";

void runGeneratedCExperiment() {
  std::printf("\n=== End-to-end: generated C + C runtime vs hand-written "
              "C (the paper's configuration) ===\n");

  DiagnosticEngine Diags;
  Program Prog = parseAndAnalyze(corpus::switchLed(), Diags);
  CodegenOptions Opts;
  Opts.BaseName = "swled";
  CodegenResult R = generateC(Prog, Opts);
  if (!R.ok()) {
    std::printf("codegen failed: %s\n", R.Errors.front().c_str());
    return;
  }

  std::string Dir = "/tmp/p_sec41_bench";
  std::string Out;
  runCommand("mkdir -p " + Dir, Out);
  writeFile(Dir + "/swled.h", R.Header);
  writeFile(Dir + "/swled.c", R.Source);
  writeFile(Dir + "/gen_main.c", GeneratedMain);
  writeFile(Dir + "/hand.c", HandwrittenC);

  Out.clear();
  if (runCommand("cc -O2 -std=c99 -I" + Dir + " -I" + cRuntimeDir() + " " +
                     Dir + "/swled.c " + Dir + "/gen_main.c " +
                     cRuntimeDir() + "/prt_runtime.c -o " + Dir + "/gen",
                 Out)) {
    std::printf("compile of generated driver failed:\n%s", Out.c_str());
    return;
  }
  Out.clear();
  if (runCommand("cc -O2 -std=c99 " + Dir + "/hand.c -o " + Dir + "/hand",
                 Out)) {
    std::printf("compile of hand-written driver failed:\n%s", Out.c_str());
    return;
  }

  std::string GenOut, HandOut;
  runCommand(Dir + "/gen", GenOut);
  runCommand(Dir + "/hand", HandOut);
  std::printf("  generated P driver:   %s", GenOut.c_str());
  std::printf("  hand-written driver:  %s", HandOut.c_str());
  std::printf("\npaper context: at the paper's 100 events/second with "
              "~4 ms per-event processing (dominated by real hardware "
              "I/O),\nboth drivers above are 5-6 orders of magnitude "
              "faster than required — the P runtime's table dispatch "
              "adds\nnanoseconds, i.e. no observable overhead, matching "
              "Section 4.1's finding.\n");
  const std::string PSource = corpus::switchLed();
  std::printf("code size: P source %zu lines vs hand-written C baseline "
              "(paper: 150 lines P vs 6000 lines C for the full "
              "driver).\n",
              static_cast<size_t>(
                  std::count(PSource.begin(), PSource.end(), '\n')));
}

//===----------------------------------------------------------------------===//
// --json mode: manual timing into the stable bench-report schema
//===----------------------------------------------------------------------===//

/// google-benchmark owns stdout and its JSON flavor does not match the
/// project schema, so --json times both drivers directly (steady_clock
/// over a fixed cycle count) and emits obs/BenchJson.h records. The
/// generated-C experiment is skipped: it shells out to the system C
/// compiler, which a machine-readable smoke run should not depend on.
int runJsonMode(const std::string &Path) {
  using Clock = std::chrono::steady_clock;
  constexpr uint64_t Cycles = 100000; // 400k events per driver.
  obs::BenchReport Report("sec41_overhead");

  {
    Host H(erasedSwitchLed());
    int32_t Id = H.createMachine("SwitchLedDriver");
    auto T0 = Clock::now();
    for (uint64_t I = 0; I != Cycles; ++I) {
      H.addEvent(Id, "SwitchedOn");
      H.addEvent(Id, "LedOk");
      H.addEvent(Id, "SwitchedOff");
      H.addEvent(Id, "LedOk");
    }
    double Secs = std::chrono::duration<double>(Clock::now() - T0).count();
    if (H.hasError()) {
      std::fprintf(stderr, "interpreter driver errored: %s\n",
                   H.errorMessage().c_str());
      return 1;
    }
    obs::Json Config = obs::Json::object();
    Config.set("driver", "p_interpreter");
    Config.set("cycles", Cycles);
    obs::Json Stats = obs::Json::object();
    Stats.set("events", 4 * Cycles);
    Stats.set("ns_per_event", Secs * 1e9 / (4.0 * Cycles));
    Report.addRun(std::move(Config), std::move(Stats), Secs);
  }

  {
    HandwrittenDriver D;
    auto T0 = Clock::now();
    for (uint64_t I = 0; I != Cycles; ++I) {
      D.handle(HandwrittenDriver::Ev::SwitchedOn);
      D.handle(HandwrittenDriver::Ev::LedOk);
      D.handle(HandwrittenDriver::Ev::SwitchedOff);
      D.handle(HandwrittenDriver::Ev::LedOk);
      benchmark::DoNotOptimize(D);
    }
    double Secs = std::chrono::duration<double>(Clock::now() - T0).count();
    obs::Json Config = obs::Json::object();
    Config.set("driver", "handwritten_cpp");
    Config.set("cycles", Cycles);
    obs::Json Stats = obs::Json::object();
    Stats.set("events", 4 * Cycles);
    Stats.set("ns_per_event", Secs * 1e9 / (4.0 * Cycles));
    Report.addRun(std::move(Config), std::move(Stats), Secs);
  }

  // --fault-seed adds a third driver: the interpreter behind the seeded
  // adversarial transport, restarted whenever a lost or duplicated
  // completion wedges its FSM. ns_per_event here is the cost of staying
  // up under faults, rebuilds included.
  if (HasFaultSeed) {
    std::optional<Host> H;
    uint64_t Restarts = 0, Dropped = 0, Duplicated = 0, Delayed = 0;
    auto Fresh = [&] {
      if (H) {
        Dropped += H->stats().EventsDropped;
        Duplicated += H->stats().EventsDuplicated;
        Delayed += H->stats().EventsDelayed;
      }
      H.emplace(erasedSwitchLed());
      H->setFaultPlan(sec41FaultPlan());
      return H->createMachine("SwitchLedDriver");
    };
    int32_t Id = Fresh();
    auto T0 = Clock::now();
    for (uint64_t I = 0; I != Cycles; ++I) {
      H->addEvent(Id, "SwitchedOn");
      H->addEvent(Id, "LedOk");
      H->addEvent(Id, "SwitchedOff");
      H->addEvent(Id, "LedOk");
      if (H->hasError()) {
        ++Restarts;
        Id = Fresh();
      }
    }
    double Secs = std::chrono::duration<double>(Clock::now() - T0).count();
    Dropped += H->stats().EventsDropped;
    Duplicated += H->stats().EventsDuplicated;
    Delayed += H->stats().EventsDelayed;
    obs::Json Config = obs::Json::object();
    Config.set("driver", "p_interpreter_faulty");
    Config.set("cycles", Cycles);
    Config.set("fault_seed", FaultSeedFlag);
    obs::Json Stats = obs::Json::object();
    Stats.set("events", 4 * Cycles);
    Stats.set("ns_per_event", Secs * 1e9 / (4.0 * Cycles));
    Stats.set("driver_restarts", Restarts);
    Stats.set("events_dropped", Dropped);
    Stats.set("events_duplicated", Duplicated);
    Stats.set("events_delayed", Delayed);
    Report.addRun(std::move(Config), std::move(Stats), Secs);
  }

  if (!Report.writeTo(Path)) {
    std::fprintf(stderr, "cannot write JSON report to %s\n", Path.c_str());
    return 1;
  }
  return 0;
}

/// --report mode: a live interpreter-driver run whose host section
/// (dispatch latency p50/p99, queue high-water, events/sec) and
/// p_host_* metrics dump become the run report. This bench has no
/// check() runs, so the runs array stays empty — valid per the schema
/// because the host section is present.
int runReportMode(const std::string &Base) {
  obs::RunReport RunRep("sec41_overhead");
  Host H(erasedSwitchLed());
  int32_t Id = H.createMachine("SwitchLedDriver");
  constexpr int Cycles = 25000;
  for (int I = 0; I != Cycles && Id >= 0; ++I) {
    H.addEvent(Id, "SwitchedOn");
    H.addEvent(Id, "LedOk");
    H.addEvent(Id, "SwitchedOff");
    H.addEvent(Id, "LedOk");
  }
  if (H.hasError()) {
    std::fprintf(stderr, "interpreter driver errored: %s\n",
                 H.errorMessage().c_str());
    return 1;
  }
  RunRep.setHost(H);
  obs::MetricsRegistry Registry;
  H.exportMetrics(Registry);
  RunRep.setMetrics(Registry);
  std::string Why;
  if (!RunRep.writeTo(Base, &Why)) {
    std::fprintf(stderr, "cannot write report %s: %s\n", Base.c_str(),
                 Why.c_str());
    return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  // Strip --json, --report and --fault-seed before google-benchmark
  // sees (and rejects) them.
  std::string JsonPath;
  std::string ReportPath;
  std::vector<char *> Args;
  for (int I = 0; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--json") && I + 1 < argc) {
      JsonPath = argv[++I];
      continue;
    }
    if (!std::strcmp(argv[I], "--report") && I + 1 < argc) {
      ReportPath = argv[++I];
      continue;
    }
    if (!std::strcmp(argv[I], "--fault-seed") && I + 1 < argc) {
      FaultSeedFlag = std::strtoull(argv[++I], nullptr, 10);
      HasFaultSeed = true;
      continue;
    }
    Args.push_back(argv[I]);
  }
  if (!ReportPath.empty()) {
    if (int Rc = runReportMode(ReportPath))
      return Rc;
    if (JsonPath.empty())
      return 0;
  }
  if (!JsonPath.empty())
    return runJsonMode(JsonPath);

  int NewArgc = static_cast<int>(Args.size());
  benchmark::Initialize(&NewArgc, Args.data());
  std::printf("=== Section 4.1: per-event overhead, P vs hand-written "
              "===\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  runGeneratedCExperiment();
  return 0;
}
