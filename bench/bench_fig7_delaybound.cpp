//===- bench/bench_fig7_delaybound.cpp - Figure 7 reproduction --------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Figure 7: "States explored with increasing delay bound" for the three
// benchmark P programs (Elevator from Section 2, the Switch-and-LED
// driver, German's cache coherence protocol). The paper's observations,
// which this harness regenerates:
//
//   * explored states grow with the delay bound d and eventually
//     saturate (the paper reports saturation around d = 12 on Zing; our
//     models/state encodings differ, so the saturation point differs,
//     but the shape — growth then plateau — is the claim);
//   * bugs in buggy versions of these designs are found within a delay
//     bound of 2, at state counts far below saturation.
//
// Output: one CSV-ish series per program, then the seeded-bug table.
// With --json the same runs are additionally emitted as the stable
// bench-report schema (obs/BenchJson.h); the human tables move to
// stderr when the report goes to stdout (--json -). --fault-budget k
// layers k-bounded transport faults (drop/duplicate) on top of every
// run; bench_fault_injection sweeps that axis systematically.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"
#include "host/LatencyProbe.h"
#include "obs/BenchJson.h"
#include "obs/Report.h"
#include "support/Interrupt.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace p;

namespace {

int WorkersFlag = 1;      ///< --workers N (0 = hardware_concurrency).
int FaultBudgetFlag = 0;  ///< --fault-budget k: transport faults per path.
bool QuickFlag = false;   ///< --quick: small sweep for smoke tests.
bool ProgressFlag = false; ///< --progress: heartbeat lines on stderr.
bool ProfileFlag = false; ///< --profile: per-machine table on stderr.
std::string JsonPath;     ///< --json <file|->; empty = no report.
std::string ReportPath;   ///< --report <base>: <base>.{json,html}.
std::FILE *Human = stdout; ///< Tables; stderr when the JSON owns stdout.
VisitedMode VisitedFlag = VisitedMode::Fingerprint; ///< --visited-mode.
uint64_t VisitedCapFlag = 0; ///< --visited-cap bytes (Compact; 0=64MiB).
Reduction ReduceFlag = Reduction::Off; ///< --reduction off|sleep|symmetry|both.
std::string CheckpointBase;        ///< --checkpoint <base>: per-run files.
double CheckpointIntervalFlag = 30; ///< --checkpoint-interval seconds.
bool ResumeFlag = false;           ///< --resume: continue per-run files.

const char *visitedModeName(VisitedMode M) {
  switch (M) {
  case VisitedMode::Exact:
    return "exact";
  case VisitedMode::Fingerprint:
    return "fingerprint";
  case VisitedMode::Compact:
    return "compact";
  }
  return "?";
}

VisitedMode parseVisitedMode(const char *S) {
  if (!std::strcmp(S, "exact"))
    return VisitedMode::Exact;
  if (!std::strcmp(S, "compact"))
    return VisitedMode::Compact;
  if (!std::strcmp(S, "fingerprint"))
    return VisitedMode::Fingerprint;
  std::fprintf(stderr,
               "unknown --visited-mode '%s' (exact|fingerprint|compact)\n",
               S);
  std::exit(2);
}

Reduction parseReductionOrExit(const char *S) {
  Reduction R;
  if (parseReduction(S, R))
    return R;
  std::fprintf(stderr, "unknown --reduction '%s' (off|sleep|symmetry|both)\n",
               S);
  std::exit(2);
}

obs::BenchReport Report("fig7_delaybound");
obs::RunReport RunRep("fig7_delaybound");

CompiledProgram compileOrExit(const std::string &Src) {
  CompileResult R = compileString(Src);
  if (!R.ok()) {
    std::fprintf(stderr, "compile error:\n%s", R.Diags.str().c_str());
    std::exit(1);
  }
  return std::move(*R.Program);
}

void installProgress(CheckOptions &Opts) {
  if (!ProgressFlag)
    return;
  Opts.ProgressIntervalSeconds = 1.0;
  Opts.Progress = [](const CheckStats &S) {
    std::fprintf(stderr,
                 "progress: %.1fs states=%llu (%.0f/s) nodes=%llu "
                 "frontier=%llu depth=%d visited=%.1fMB\n",
                 S.Seconds, static_cast<unsigned long long>(S.DistinctStates),
                 S.Seconds > 0
                     ? static_cast<double>(S.DistinctStates) / S.Seconds
                     : 0.0,
                 static_cast<unsigned long long>(S.NodesExplored),
                 static_cast<unsigned long long>(S.FrontierNodes), S.MaxDepth,
                 S.VisitedBytes / (1024.0 * 1024.0));
  };
}

/// Observability options shared by every run: coverage whenever a
/// machine-readable artifact is requested (both schemas carry the
/// block), the profiler for --profile or --report.
void installObs(CheckOptions &Opts) {
  Opts.TrackCoverage = !JsonPath.empty() || !ReportPath.empty();
  Opts.Profile = ProfileFlag || !ReportPath.empty();
  installProgress(Opts);
}

/// Crash safety shared by every run. Each run checkpoints to its own
/// file (<base>.<slug>.ckpt) so a sweep interrupted mid-flight can be
/// re-run with --resume: completed runs reload their final checkpoint
/// (reproducing the same stats instantly) and the interrupted one
/// continues where it stopped. --resume only resumes files that exist;
/// runs without one start fresh.
void installCrashSafety(CheckOptions &Opts, const std::string &RunSlug) {
  Opts.InterruptFlag = &interrupt::flag();
  if (CheckpointBase.empty())
    return;
  Opts.CheckpointPath = CheckpointBase + "." + RunSlug + ".ckpt";
  Opts.CheckpointIntervalSeconds = CheckpointIntervalFlag;
  if (ResumeFlag) {
    if (std::FILE *F = std::fopen(Opts.CheckpointPath.c_str(), "rb")) {
      std::fclose(F);
      Opts.Resume = true;
    }
  }
}

/// Handles a finished run's crash-safety verdicts: a failed resume is a
/// hard configuration error (exit 3, never a silent restart), and an
/// interrupt flushes whatever report rows exist (the writes are atomic)
/// before exiting 128+signal with a partial-stats block on stderr.
void handleRunExit(const CheckResult &R) {
  if (!R.ResumeError.empty()) {
    std::fprintf(stderr, "resume failed: %s\n", R.ResumeError.c_str());
    std::exit(3);
  }
  if (!R.Stats.Interrupted)
    return;
  if (!JsonPath.empty())
    Report.writeTo(JsonPath);
  if (!ReportPath.empty())
    writeReportWithProbe(RunRep, ReportPath);
  interrupt::printInterruptedStats(R.Stats);
  std::exit(interrupt::exitCode());
}

/// Sweeps the delay bound until saturation (two consecutive equal state
/// counts with the search exhausted), a node cap, or a time budget.
void sweep(const char *Name, const char *Slug, const CompiledProgram &Prog,
           int MaxDelay, uint64_t NodeCap, double TimeBudget) {
  std::fprintf(Human, "# %s\n", Name);
  std::fprintf(Human, "%-10s %-12s %-12s %-10s %-10s %s\n", "delay_d",
               "states", "nodes", "slices", "seconds", "note");
  uint64_t Prev = 0;
  bool Saturated = false;
  for (int D = 0; D <= MaxDelay; ++D) {
    CheckOptions Opts;
    Opts.DelayBound = D;
    Opts.MaxNodes = NodeCap;
    Opts.StopOnFirstError = false;
    Opts.Workers = WorkersFlag;
    Opts.Faults.Budget = FaultBudgetFlag; // Drop/duplicate, the defaults.
    Opts.Visited = VisitedFlag;
    Opts.VisitedCapBytes = VisitedCapFlag;
    Opts.Reduce = ReduceFlag;
    installObs(Opts);
    installCrashSafety(Opts, std::string(Slug) + "-d" + std::to_string(D));
    CheckResult R = check(Prog, Opts);
    if (ProfileFlag)
      std::fprintf(stderr, "# %s d=%d profile\n%s", Slug, D,
                   R.Profile.str(Prog).c_str());
    const char *Note = "";
    if (!R.Stats.Exhausted)
      Note = "node-cap";
    else if (D > 0 && R.Stats.DistinctStates == Prev) {
      Note = "saturated";
      Saturated = true;
    }
    std::fprintf(Human, "%-10d %-12llu %-12llu %-10llu %-10.3f %s\n", D,
                 static_cast<unsigned long long>(R.Stats.DistinctStates),
                 static_cast<unsigned long long>(R.Stats.NodesExplored),
                 static_cast<unsigned long long>(R.Stats.Slices),
                 R.Stats.Seconds, Note);
    if (R.ErrorFound)
      std::fprintf(Human, "  !! unexpected error: %s\n",
                   R.ErrorMessage.c_str());
    if (!JsonPath.empty() || !ReportPath.empty()) {
      obs::Json Config = obs::Json::object();
      Config.set("program", Slug);
      Config.set("delay_bound", D);
      Config.set("node_cap", NodeCap);
      Config.set("workers", WorkersFlag);
      Config.set("fault_budget", FaultBudgetFlag);
      Config.set("visited_mode", visitedModeName(VisitedFlag));
      Config.set("reduction", reductionName(ReduceFlag));
      if (!ReportPath.empty())
        RunRep.addCheckRun(Prog, Config, R);
      if (!JsonPath.empty())
        Report.addRun(std::move(Config), Prog, R);
    }
    handleRunExit(R);
    if (Saturated || !R.Stats.Exhausted || R.Stats.Seconds > TimeBudget)
      break;
    Prev = R.Stats.DistinctStates;
  }
  std::fprintf(Human, "\n");
}

struct BugCase {
  const char *Name;
  std::string Source;
  ErrorKind Expected;
};

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--workers") && I + 1 < argc)
      WorkersFlag = std::atoi(argv[++I]);
    else if (!std::strcmp(argv[I], "--fault-budget") && I + 1 < argc)
      FaultBudgetFlag = std::atoi(argv[++I]);
    else if (!std::strcmp(argv[I], "--json") && I + 1 < argc)
      JsonPath = argv[++I];
    else if (!std::strcmp(argv[I], "--report") && I + 1 < argc)
      ReportPath = argv[++I];
    else if (!std::strcmp(argv[I], "--visited-mode") && I + 1 < argc)
      VisitedFlag = parseVisitedMode(argv[++I]);
    else if (!std::strcmp(argv[I], "--visited-cap") && I + 1 < argc)
      VisitedCapFlag = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--reduction") && I + 1 < argc)
      ReduceFlag = parseReductionOrExit(argv[++I]);
    else if (!std::strcmp(argv[I], "--quick"))
      QuickFlag = true;
    else if (!std::strcmp(argv[I], "--progress"))
      ProgressFlag = true;
    else if (!std::strcmp(argv[I], "--profile"))
      ProfileFlag = true;
    else if (!std::strcmp(argv[I], "--checkpoint") && I + 1 < argc)
      CheckpointBase = argv[++I];
    else if (!std::strcmp(argv[I], "--checkpoint-interval") && I + 1 < argc)
      CheckpointIntervalFlag = std::atof(argv[++I]);
    else if (!std::strcmp(argv[I], "--resume"))
      ResumeFlag = true;
  }
  if (JsonPath == "-")
    Human = stderr; // Keep stdout machine-clean for the report.
  interrupt::installHandlers();

  std::fprintf(Human, "=== Figure 7: states explored vs delay bound ===\n");
  std::fprintf(Human,
               "(paper: Zing on the authors' models, saturation ~d=12, "
               "hours of CPU; ours: same semantics, our models, "
               "seconds; workers=%d, 0=auto)\n\n",
               WorkersFlag);

  // --quick shrinks the sweep to seconds for smoke tests and the JSON
  // schema check; the claims are still visible in miniature.
  int MaxDelay = QuickFlag ? 2 : 12;
  uint64_t NodeCap = QuickFlag ? 50000 : 400000;
  double TimeBudget = QuickFlag ? 2.0 : 20.0;

  sweep("Elevator (Section 2)", "elevator",
        compileOrExit(corpus::elevator()), MaxDelay, NodeCap, TimeBudget);
  sweep("Switch-and-LED (Section 4.1)", "switchled",
        compileOrExit(corpus::switchLed()), MaxDelay, NodeCap, TimeBudget);
  sweep("Worker pool (symmetric workers)", "workerpool",
        compileOrExit(corpus::workerPool(3)), MaxDelay, NodeCap, TimeBudget);
  if (!QuickFlag)
    sweep("German cache coherence (2 clients)", "german2",
          compileOrExit(corpus::german(2)), MaxDelay, NodeCap, TimeBudget);

  std::fprintf(Human,
               "=== Seeded bugs: found within delay bound 2 (paper claim) "
               "===\n");
  std::fprintf(Human, "%-34s %-8s %-12s %-10s %s\n", "program/bug",
               "found_d", "states", "seconds", "error");
  std::vector<BugCase> Bugs = {
      {"elevator/missing-defer-close",
       corpus::elevator(corpus::ElevatorBug::MissingDeferCloseDoor),
       ErrorKind::UnhandledEvent},
      {"elevator/missing-defer-timer",
       corpus::elevator(corpus::ElevatorBug::MissingDeferTimerFired),
       ErrorKind::UnhandledEvent},
      {"switchled/missing-defer-switch",
       corpus::switchLed(corpus::SwitchLedBug::MissingDeferSwitch),
       ErrorKind::UnhandledEvent},
      {"switchled/wrong-retry-assert",
       corpus::switchLed(corpus::SwitchLedBug::WrongRetryAssert),
       ErrorKind::AssertFailed},
      {"german/skip-owner-invalidation",
       corpus::german(2, corpus::GermanBug::SkipOwnerInvalidation),
       ErrorKind::AssertFailed},
      {"usbhub/surprise-remove",
       corpus::usbHub(1, corpus::UsbHubBug::SurpriseRemoveDuringReset),
       ErrorKind::UnhandledEvent},
  };
  if (QuickFlag)
    Bugs.resize(2); // The elevator cases; enough for the schema check.
  for (const BugCase &Bug : Bugs) {
    CompiledProgram Prog = compileOrExit(Bug.Source);
    bool Found = false;
    for (int D = 0; D <= 2 && !Found; ++D) {
      CheckOptions Opts;
      Opts.DelayBound = D;
      Opts.Workers = WorkersFlag;
      Opts.Faults.Budget = FaultBudgetFlag;
      Opts.Visited = VisitedFlag;
      Opts.VisitedCapBytes = VisitedCapFlag;
      Opts.Reduce = ReduceFlag;
      installObs(Opts);
      std::string BugSlug = Bug.Name;
      for (char &C : BugSlug)
        if (C == '/')
          C = '-';
      installCrashSafety(Opts, BugSlug + "-d" + std::to_string(D));
      CheckResult R = check(Prog, Opts);
      if (!JsonPath.empty() || !ReportPath.empty()) {
        obs::Json Config = obs::Json::object();
        Config.set("program", Bug.Name);
        Config.set("delay_bound", D);
        Config.set("workers", WorkersFlag);
        Config.set("fault_budget", FaultBudgetFlag);
        Config.set("visited_mode", visitedModeName(VisitedFlag));
        Config.set("reduction", reductionName(ReduceFlag));
        Config.set("seeded_bug", true);
        if (!ReportPath.empty())
          RunRep.addCheckRun(Prog, Config, R);
        if (!JsonPath.empty())
          Report.addRun(std::move(Config), Prog, R);
      }
      handleRunExit(R);
      if (R.ErrorFound) {
        std::fprintf(Human, "%-34s %-8d %-12llu %-10.3f %s\n", Bug.Name, D,
                     static_cast<unsigned long long>(R.Stats.DistinctStates),
                     R.Stats.Seconds, errorKindName(R.Error));
        Found = true;
      }
    }
    if (!Found)
      std::fprintf(Human, "%-34s NOT FOUND within d=2 (claim violated!)\n",
                   Bug.Name);
  }

  if (!JsonPath.empty() && !Report.writeTo(JsonPath)) {
    std::fprintf(stderr, "cannot write JSON report to %s\n",
                 JsonPath.c_str());
    return 1;
  }
  if (!ReportPath.empty() && !writeReportWithProbe(RunRep, ReportPath))
    return 1;
  return 0;
}
