//===- examples/pc.cpp - The P compiler driver -------------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Command-line front door to the whole toolchain:
//
//   pc check   file.p [-d N] [--depth N] [--max-nodes N]   verify (Section 5)
//   pc live    file.p [-d N]                               liveness (Section 3.2)
//   pc emit-c  file.p [-o dir] [--name base]               generate C (Section 4)
//   pc dump    file.p                                      tables + bytecode
//   pc dot     file.p [--machine NAME]                     Graphviz diagram
//
// Example:
//   ./build/examples/example_pc check my_driver.p -d 2
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "checker/Liveness.h"
#include "codegen/CCodeGen.h"
#include "frontend/Frontend.h"
#include "pir/Dot.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace p;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: pc <check|live|emit-c|dump|dot> file.p [options]\n"
      "  check:  -d N (delay bound), --depth N, --max-nodes N,\n"
      "          --coverage (structural coverage report)\n"
      "  live:   -d N (delay bound)\n"
      "  emit-c: -o DIR (output directory), --name BASE\n"
      "  dot:    --machine NAME (one machine; default: all)\n");
  return 2;
}

std::string readFile(const std::string &Path, bool &Ok) {
  std::ifstream In(Path);
  if (!In.good()) {
    Ok = false;
    return "";
  }
  std::ostringstream Out;
  Out << In.rdbuf();
  Ok = true;
  return Out.str();
}

int cmdCheck(const CompiledProgram &Prog, int Delay, int Depth,
             uint64_t MaxNodes, bool Coverage) {
  CheckOptions Opts;
  Opts.DelayBound = Delay;
  if (Depth > 0)
    Opts.DepthBound = Depth;
  Opts.MaxNodes = MaxNodes;
  Opts.TrackCoverage = Coverage;
  CheckResult R = check(Prog, Opts);
  if (Coverage)
    std::printf("coverage:\n%s", R.Coverage.str(Prog).c_str());
  std::printf("states=%llu nodes=%llu slices=%llu depth=%d time=%.3fs%s\n",
              static_cast<unsigned long long>(R.Stats.DistinctStates),
              static_cast<unsigned long long>(R.Stats.NodesExplored),
              static_cast<unsigned long long>(R.Stats.Slices),
              R.Stats.MaxDepth, R.Stats.Seconds,
              R.Stats.Exhausted ? "" : " (search capped)");
  if (!R.ErrorFound) {
    std::printf("no errors found at delay bound %d\n", Delay);
    return 0;
  }
  std::printf("error: %s: %s\n", errorKindName(R.Error),
              R.ErrorMessage.c_str());
  std::printf("counterexample (%zu steps):\n", R.Trace.size());
  for (const std::string &Line : R.Trace)
    std::printf("  %s\n", Line.c_str());
  return 1;
}

int cmdLive(const CompiledProgram &Prog, int Delay) {
  LivenessOptions Opts;
  Opts.DelayBound = Delay;
  LivenessResult R = checkLiveness(Prog, Opts);
  std::printf("nodes=%llu cycles=%llu%s\n",
              static_cast<unsigned long long>(R.NodesExplored),
              static_cast<unsigned long long>(R.CyclesChecked),
              R.Exhausted ? "" : " (search capped)");
  if (!R.ViolationFound) {
    std::printf("no liveness violations found at delay bound %d\n", Delay);
    return 0;
  }
  std::printf("liveness violation: %s\nlasso loop:\n", R.Message.c_str());
  for (const std::string &Line : R.CycleTrace)
    std::printf("  %s\n", Line.c_str());
  return 1;
}

int cmdEmitC(const Program &Ast, const std::string &OutDir,
             const std::string &Base) {
  CodegenOptions Opts;
  Opts.BaseName = Base;
  CodegenResult R = generateC(Ast, Opts);
  if (!R.ok()) {
    for (const std::string &E : R.Errors)
      std::fprintf(stderr, "codegen error: %s\n", E.c_str());
    return 1;
  }
  std::ofstream H(OutDir + "/" + Base + ".h");
  H << R.Header;
  std::ofstream C(OutDir + "/" + Base + ".c");
  C << R.Source;
  std::printf("wrote %s/%s.h and %s/%s.c (C runtime: %s)\n", OutDir.c_str(),
              Base.c_str(), OutDir.c_str(), Base.c_str(),
              cRuntimeDir().c_str());
  return 0;
}

int cmdDump(const CompiledProgram &Prog) {
  std::printf("%s", Prog.summary().c_str());
  for (const MachineInfo &M : Prog.Machines) {
    for (const Body &B : M.Bodies)
      std::printf("\n%s", disassemble(B).c_str());
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 3)
    return usage();
  std::string Cmd = argv[1];
  std::string Path = argv[2];

  int Delay = 2;
  int Depth = 0;
  uint64_t MaxNodes = 0;
  std::string OutDir = ".";
  std::string Base = "pgen";
  std::string MachineName;
  bool Coverage = false;
  for (int I = 3; I < argc; ++I) {
    std::string Arg = argv[I];
    auto next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "-d") {
      if (const char *V = next())
        Delay = std::atoi(V);
    } else if (Arg == "--depth") {
      if (const char *V = next())
        Depth = std::atoi(V);
    } else if (Arg == "--max-nodes") {
      if (const char *V = next())
        MaxNodes = std::strtoull(V, nullptr, 10);
    } else if (Arg == "-o") {
      if (const char *V = next())
        OutDir = V;
    } else if (Arg == "--name") {
      if (const char *V = next())
        Base = V;
    } else if (Arg == "--machine") {
      if (const char *V = next())
        MachineName = V;
    } else if (Arg == "--coverage") {
      Coverage = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return usage();
    }
  }

  bool Ok = false;
  std::string Source = readFile(Path, Ok);
  if (!Ok) {
    std::fprintf(stderr, "cannot read '%s'\n", Path.c_str());
    return 2;
  }

  DiagnosticEngine Diags;
  Program Ast = parseAndAnalyze(Source, Diags);
  for (const Diagnostic &D : Diags.diagnostics())
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), D.str().c_str());
  if (Diags.hasErrors())
    return 1;

  if (Cmd == "emit-c")
    return cmdEmitC(Ast, OutDir, Base);

  CompiledProgram Prog = lower(Ast);
  if (Cmd == "check")
    return cmdCheck(Prog, Delay, Depth, MaxNodes, Coverage);
  if (Cmd == "live")
    return cmdLive(Prog, Delay);
  if (Cmd == "dump")
    return cmdDump(Prog);
  if (Cmd == "dot") {
    if (MachineName.empty()) {
      std::printf("%s", toDot(Prog).c_str());
      return 0;
    }
    int Index = Prog.findMachine(MachineName);
    if (Index < 0) {
      std::fprintf(stderr, "unknown machine '%s'\n", MachineName.c_str());
      return 1;
    }
    std::printf("%s", toDot(Prog, Index).c_str());
    return 0;
  }
  return usage();
}
