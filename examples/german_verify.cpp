//===- examples/german_verify.cpp - Verifying a cache coherence protocol ----===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// German's cache coherence protocol — the paper's third systematic-
// testing benchmark. Scales the client count, reports explored states
// (the state-explosion curve behind Figure 7/8), and shows the ghost
// auditor catching a protocol violation in a seeded-bug variant.
//
// Observability flags (see src/obs/ and DESIGN.md "Observability"):
//   --progress            heartbeat lines on stderr during long checks
//   --trace <file.jsonl>  structured event trace of the buggy-run check
//   --chrome <file.json>  same trace in Chrome trace-event format
//   --msc                 message-sequence chart of the counterexample
//   --metrics             Prometheus-style metrics dump after the runs
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "obs/TraceExport.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

using namespace p;

static CompiledProgram compileOrExit(const std::string &Src) {
  CompileResult R = compileString(Src);
  if (!R.ok()) {
    std::fprintf(stderr, "compile error:\n%s", R.Diags.str().c_str());
    std::exit(1);
  }
  return std::move(*R.Program);
}

int main(int argc, char **argv) {
  int Workers = 1; // --workers N (0 = hardware_concurrency)
  bool Progress = false, Msc = false, Metrics = false;
  std::string TracePath, ChromePath;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--workers") && I + 1 < argc)
      Workers = std::atoi(argv[++I]);
    else if (!std::strcmp(argv[I], "--trace") && I + 1 < argc)
      TracePath = argv[++I];
    else if (!std::strcmp(argv[I], "--chrome") && I + 1 < argc)
      ChromePath = argv[++I];
    else if (!std::strcmp(argv[I], "--msc"))
      Msc = true;
    else if (!std::strcmp(argv[I], "--metrics"))
      Metrics = true;
    else if (!std::strcmp(argv[I], "--progress"))
      Progress = true;
  }

  obs::MetricsRegistry Registry;
  auto withObs = [&](CheckOptions &Opts) {
    if (Metrics)
      Opts.Metrics = &Registry;
    if (Progress) {
      Opts.ProgressIntervalSeconds = 1.0;
      Opts.Progress = [](const CheckStats &S) {
        std::fprintf(stderr,
                     "progress: %.1fs states=%llu nodes=%llu depth=%d\n",
                     S.Seconds,
                     static_cast<unsigned long long>(S.DistinctStates),
                     static_cast<unsigned long long>(S.NodesExplored),
                     S.MaxDepth);
      };
    }
  };

  std::printf("== German's protocol: state growth with client count "
              "(workers=%d, 0=auto) ==\n",
              Workers);
  std::printf("  %-8s %-6s %-10s %-10s %s\n", "clients", "d", "states",
              "slices", "result");
  for (int N = 1; N <= 3; ++N) {
    CompiledProgram Prog = compileOrExit(corpus::german(N));
    for (int Delay = 0; Delay <= (N < 3 ? 1 : 0); ++Delay) {
      CheckOptions Opts;
      Opts.DelayBound = Delay;
      Opts.Workers = Workers;
      withObs(Opts);
      CheckResult R = check(Prog, Opts);
      std::printf("  %-8d %-6d %-10llu %-10llu %s\n", N, Delay,
                  static_cast<unsigned long long>(R.Stats.DistinctStates),
                  static_cast<unsigned long long>(R.Stats.Slices),
                  R.ErrorFound ? errorKindName(R.Error) : "clean");
    }
  }

  std::printf("\n== Seeded bug: home grants E without invalidating the "
              "owner ==\n");
  CompiledProgram Buggy = compileOrExit(
      corpus::german(2, corpus::GermanBug::SkipOwnerInvalidation));
  for (int Delay = 0; Delay <= 2; ++Delay) {
    // Event tracing is attached to the run that exposes the bug: the
    // recorder's merged ring becomes the JSONL/Chrome export below.
    obs::TraceRecorder Recorder;
    bool WantTrace = !TracePath.empty() || !ChromePath.empty();
    CheckOptions Opts;
    Opts.DelayBound = Delay;
    Opts.Workers = Workers;
    withObs(Opts);
    if (WantTrace)
      Opts.Trace = &Recorder;
    CheckResult R = check(Buggy, Opts);
    if (!R.ErrorFound) {
      std::printf("  d=%d: not exposed\n", Delay);
      continue;
    }
    std::printf("  d=%d: %s — %s\n", Delay, errorKindName(R.Error),
                R.ErrorMessage.c_str());
    size_t Start = R.Trace.size() > 10 ? R.Trace.size() - 10 : 0;
    for (size_t I = Start; I != R.Trace.size(); ++I)
      std::printf("    %s\n", R.Trace[I].c_str());

    if (!TracePath.empty()) {
      std::ofstream Out(TracePath);
      size_t Lines = obs::exportJsonl(Recorder.snapshot(), Out);
      std::printf("  trace: %zu events -> %s (dropped %llu)\n", Lines,
                  TracePath.c_str(),
                  static_cast<unsigned long long>(Recorder.dropped()));
    }
    if (!ChromePath.empty()) {
      std::ofstream Out(ChromePath);
      obs::exportChromeTrace(Recorder.snapshot(), Out, &Buggy);
      std::printf("  chrome trace -> %s (load in Perfetto or "
                  "chrome://tracing)\n",
                  ChromePath.c_str());
    }
    if (Msc) {
      std::printf("\n-- counterexample message-sequence chart --\n%s",
                  obs::renderScheduleMsc(Buggy, R.Schedule,
                                         Opts.UseModelBodies)
                      .c_str());
    }
    break;
  }

  if (Metrics)
    std::printf("\n-- metrics --\n%s", Registry.renderPrometheus().c_str());

  std::printf("\ngerman_verify ok\n");
  return 0;
}
