//===- examples/german_verify.cpp - Verifying a cache coherence protocol ----===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// German's cache coherence protocol — the paper's third systematic-
// testing benchmark. Scales the client count, reports explored states
// (the state-explosion curve behind Figure 7/8), and shows the ghost
// auditor catching a protocol violation in a seeded-bug variant.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace p;

static CompiledProgram compileOrExit(const std::string &Src) {
  CompileResult R = compileString(Src);
  if (!R.ok()) {
    std::fprintf(stderr, "compile error:\n%s", R.Diags.str().c_str());
    std::exit(1);
  }
  return std::move(*R.Program);
}

int main(int argc, char **argv) {
  int Workers = 1; // --workers N (0 = hardware_concurrency)
  for (int I = 1; I < argc; ++I)
    if (!std::strcmp(argv[I], "--workers") && I + 1 < argc)
      Workers = std::atoi(argv[++I]);
  std::printf("== German's protocol: state growth with client count "
              "(workers=%d, 0=auto) ==\n",
              Workers);
  std::printf("  %-8s %-6s %-10s %-10s %s\n", "clients", "d", "states",
              "slices", "result");
  for (int N = 1; N <= 3; ++N) {
    CompiledProgram Prog = compileOrExit(corpus::german(N));
    for (int Delay = 0; Delay <= (N < 3 ? 1 : 0); ++Delay) {
      CheckOptions Opts;
      Opts.DelayBound = Delay;
      Opts.Workers = Workers;
      CheckResult R = check(Prog, Opts);
      std::printf("  %-8d %-6d %-10llu %-10llu %s\n", N, Delay,
                  static_cast<unsigned long long>(R.Stats.DistinctStates),
                  static_cast<unsigned long long>(R.Stats.Slices),
                  R.ErrorFound ? errorKindName(R.Error) : "clean");
    }
  }

  std::printf("\n== Seeded bug: home grants E without invalidating the "
              "owner ==\n");
  CompiledProgram Buggy = compileOrExit(
      corpus::german(2, corpus::GermanBug::SkipOwnerInvalidation));
  for (int Delay = 0; Delay <= 2; ++Delay) {
    CheckOptions Opts;
    Opts.DelayBound = Delay;
    Opts.Workers = Workers;
    CheckResult R = check(Buggy, Opts);
    if (!R.ErrorFound) {
      std::printf("  d=%d: not exposed\n", Delay);
      continue;
    }
    std::printf("  d=%d: %s — %s\n", Delay, errorKindName(R.Error),
                R.ErrorMessage.c_str());
    size_t Start = R.Trace.size() > 10 ? R.Trace.size() - 10 : 0;
    for (size_t I = Start; I != R.Trace.size(); ++I)
      std::printf("    %s\n", R.Trace[I].c_str());
    break;
  }

  std::printf("\ngerman_verify ok\n");
  return 0;
}
