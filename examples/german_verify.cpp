//===- examples/german_verify.cpp - Verifying a cache coherence protocol ----===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// German's cache coherence protocol — the paper's third systematic-
// testing benchmark. Scales the client count, reports explored states
// (the state-explosion curve behind Figure 7/8), and shows the ghost
// auditor catching a protocol violation in a seeded-bug variant.
//
// Observability flags (see src/obs/ and DESIGN.md "Observability"):
//   --progress            heartbeat lines on stderr during long checks
//   --trace <file.jsonl>  structured event trace of the buggy-run check
//   --chrome <file.json>  same trace in Chrome trace-event format
//   --msc                 message-sequence chart of the counterexample
//   --metrics             Prometheus-style metrics dump after the runs
//
// Single-run mode (used by the CI perf smoke job): when --clients is
// given, exactly one check runs and one machine-readable line prints:
//   --clients N           protocol size (disables the sweep above)
//   --delay D             delay bound for the single run
//   --visited-mode M      exact | fingerprint | compact
//   --visited-cap BYTES   Compact byte cap (0 = 64 MiB default)
//   --reduction R         off | sleep | symmetry | both (CheckOptions::Reduce)
//   --expect-states S     exit 1 unless DistinctStates == S
//   --max-seconds T       exit 1 when the run took longer than T
//
// Crash safety (single-run mode; see DESIGN.md "Checkpoint & resume"):
//   --checkpoint <file>   periodic + final search checkpoints
//   --checkpoint-interval S   seconds between checkpoints (default 30)
//   --resume              continue from --checkpoint instead of scratch
//                         (corrupt/mismatched checkpoints exit 3)
//   --frontier-mem BYTES  spill cold frontier nodes to disk past this cap
// SIGINT/SIGTERM are handled cooperatively in every mode: the search
// stops at the next scheduling point, writes a final checkpoint when
// --checkpoint is set, prints partial stats, and exits 128+signal.
//   --profile             per-machine search profile table on stderr
//   --report <base>       self-contained run report: <base>.json +
//                         <base>.html (stats, profile, named uncovered
//                         transitions, live host latency, metrics)
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"
#include "host/LatencyProbe.h"
#include "obs/Metrics.h"
#include "obs/Report.h"
#include "obs/Trace.h"
#include "obs/TraceExport.h"
#include "support/Interrupt.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

using namespace p;

static CompiledProgram compileOrExit(const std::string &Src) {
  CompileResult R = compileString(Src);
  if (!R.ok()) {
    std::fprintf(stderr, "compile error:\n%s", R.Diags.str().c_str());
    std::exit(1);
  }
  return std::move(*R.Program);
}

static VisitedMode parseVisitedMode(const char *S) {
  if (!std::strcmp(S, "exact"))
    return VisitedMode::Exact;
  if (!std::strcmp(S, "compact"))
    return VisitedMode::Compact;
  if (!std::strcmp(S, "fingerprint"))
    return VisitedMode::Fingerprint;
  std::fprintf(stderr,
               "unknown --visited-mode '%s' (exact|fingerprint|compact)\n",
               S);
  std::exit(2);
}

static Reduction parseReductionOrExit(const char *S) {
  Reduction R;
  if (parseReduction(S, R))
    return R;
  std::fprintf(stderr, "unknown --reduction '%s' (off|sleep|symmetry|both)\n",
               S);
  std::exit(2);
}

static const char *visitedModeName(VisitedMode M) {
  switch (M) {
  case VisitedMode::Exact:
    return "exact";
  case VisitedMode::Fingerprint:
    return "fingerprint";
  case VisitedMode::Compact:
    return "compact";
  }
  return "?";
}

int main(int argc, char **argv) {
  int Workers = 1; // --workers N (0 = hardware_concurrency)
  bool Progress = false, Msc = false, Metrics = false;
  std::string TracePath, ChromePath;
  int Clients = 0, Delay = 0; // --clients enables single-run mode.
  VisitedMode Visited = VisitedMode::Fingerprint;
  uint64_t VisitedCap = 0;
  Reduction Reduce = Reduction::Off;
  long long ExpectStates = -1;
  double MaxSeconds = 0;
  bool Profile = false;
  std::string ReportPath;
  std::string CheckpointPath;
  double CheckpointInterval = 30;
  bool Resume = false;
  uint64_t FrontierMem = 0;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--workers") && I + 1 < argc)
      Workers = std::atoi(argv[++I]);
    else if (!std::strcmp(argv[I], "--trace") && I + 1 < argc)
      TracePath = argv[++I];
    else if (!std::strcmp(argv[I], "--chrome") && I + 1 < argc)
      ChromePath = argv[++I];
    else if (!std::strcmp(argv[I], "--msc"))
      Msc = true;
    else if (!std::strcmp(argv[I], "--metrics"))
      Metrics = true;
    else if (!std::strcmp(argv[I], "--progress"))
      Progress = true;
    else if (!std::strcmp(argv[I], "--clients") && I + 1 < argc)
      Clients = std::atoi(argv[++I]);
    else if (!std::strcmp(argv[I], "--delay") && I + 1 < argc)
      Delay = std::atoi(argv[++I]);
    else if (!std::strcmp(argv[I], "--visited-mode") && I + 1 < argc)
      Visited = parseVisitedMode(argv[++I]);
    else if (!std::strcmp(argv[I], "--visited-cap") && I + 1 < argc)
      VisitedCap = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--reduction") && I + 1 < argc)
      Reduce = parseReductionOrExit(argv[++I]);
    else if (!std::strcmp(argv[I], "--expect-states") && I + 1 < argc)
      ExpectStates = std::atoll(argv[++I]);
    else if (!std::strcmp(argv[I], "--max-seconds") && I + 1 < argc)
      MaxSeconds = std::atof(argv[++I]);
    else if (!std::strcmp(argv[I], "--profile"))
      Profile = true;
    else if (!std::strcmp(argv[I], "--report") && I + 1 < argc)
      ReportPath = argv[++I];
    else if (!std::strcmp(argv[I], "--checkpoint") && I + 1 < argc)
      CheckpointPath = argv[++I];
    else if (!std::strcmp(argv[I], "--checkpoint-interval") && I + 1 < argc)
      CheckpointInterval = std::atof(argv[++I]);
    else if (!std::strcmp(argv[I], "--resume"))
      Resume = true;
    else if (!std::strcmp(argv[I], "--frontier-mem") && I + 1 < argc)
      FrontierMem = std::strtoull(argv[++I], nullptr, 10);
  }

  interrupt::installHandlers();

  if (Clients > 0) {
    // Single-run mode: one check, one parseable line, a hard verdict.
    CompiledProgram Prog = compileOrExit(corpus::german(Clients));
    CheckOptions Opts;
    Opts.DelayBound = Delay;
    Opts.Workers = Workers;
    Opts.Visited = Visited;
    Opts.VisitedCapBytes = VisitedCap;
    Opts.Reduce = Reduce;
    Opts.Profile = Profile || !ReportPath.empty();
    Opts.TrackCoverage = !ReportPath.empty();
    Opts.CheckpointPath = CheckpointPath;
    Opts.CheckpointIntervalSeconds = CheckpointInterval;
    Opts.Resume = Resume;
    Opts.FrontierMemLimitBytes = FrontierMem;
    Opts.InterruptFlag = &interrupt::flag();
    CheckResult R = check(Prog, Opts);
    if (!R.ResumeError.empty()) {
      std::fprintf(stderr, "resume failed: %s\n", R.ResumeError.c_str());
      return 3;
    }
    if (R.Stats.Interrupted) {
      // Partial results, not a verdict: report what was covered and
      // exit by the shell's death-by-signal convention. The final
      // checkpoint (when --checkpoint is set) already holds the rest.
      interrupt::printInterruptedStats(R.Stats);
      return interrupt::exitCode();
    }
    if (Profile)
      std::fprintf(stderr, "%s", R.Profile.str(Prog).c_str());
    std::printf("german clients=%d d=%d mode=%s workers=%d reduction=%s "
                "states=%llu nodes=%llu pruned=%llu collapsed=%llu "
                "seconds=%.3f visited_bytes=%llu "
                "peak_rss_bytes=%llu omission=%d error=%s\n",
                Clients, Delay, visitedModeName(Visited), Workers,
                reductionName(Reduce),
                static_cast<unsigned long long>(R.Stats.DistinctStates),
                static_cast<unsigned long long>(R.Stats.NodesExplored),
                static_cast<unsigned long long>(R.Stats.PrunedByIndependence),
                static_cast<unsigned long long>(R.Stats.SymmetryCollapsed),
                R.Stats.Seconds,
                static_cast<unsigned long long>(R.Stats.VisitedBytes),
                static_cast<unsigned long long>(R.Stats.PeakRssBytes),
                R.Stats.OmissionPossible ? 1 : 0,
                R.ErrorFound ? errorKindName(R.Error) : "none");
    if (R.ErrorFound) {
      std::fprintf(stderr, "FAIL: unexpected error: %s\n",
                   R.ErrorMessage.c_str());
      return 1;
    }
    if (ExpectStates >= 0 &&
        R.Stats.DistinctStates != static_cast<uint64_t>(ExpectStates)) {
      std::fprintf(stderr, "FAIL: states=%llu, expected %lld\n",
                   static_cast<unsigned long long>(R.Stats.DistinctStates),
                   ExpectStates);
      return 1;
    }
    if (MaxSeconds > 0 && R.Stats.Seconds > MaxSeconds) {
      std::fprintf(stderr, "FAIL: %.3fs exceeded --max-seconds %.3f\n",
                   R.Stats.Seconds, MaxSeconds);
      return 1;
    }
    if (!ReportPath.empty()) {
      obs::RunReport RunRep("german_verify");
      obs::Json Config = obs::Json::object();
      Config.set("program", "german");
      Config.set("clients", Clients);
      Config.set("delay_bound", Delay);
      Config.set("workers", Workers);
      Config.set("visited_mode", visitedModeName(Visited));
      Config.set("reduction", reductionName(Reduce));
      RunRep.addCheckRun(Prog, std::move(Config), R);
      if (!writeReportWithProbe(RunRep, ReportPath))
        return 1;
    }
    return 0;
  }

  obs::MetricsRegistry Registry;
  obs::RunReport RunRep("german_verify");
  // Ctrl-C mid-sweep: report the interrupted run's partial stats and
  // exit by the death-by-signal convention instead of dying silently.
  auto bailIfInterrupted = [](const CheckResult &R) {
    if (!R.Stats.Interrupted)
      return;
    interrupt::printInterruptedStats(R.Stats);
    std::exit(interrupt::exitCode());
  };
  auto withObs = [&](CheckOptions &Opts) {
    Opts.InterruptFlag = &interrupt::flag();
    if (Metrics)
      Opts.Metrics = &Registry;
    Opts.Profile = Profile || !ReportPath.empty();
    Opts.TrackCoverage = !ReportPath.empty();
    if (Progress) {
      Opts.ProgressIntervalSeconds = 1.0;
      Opts.Progress = [](const CheckStats &S) {
        std::fprintf(stderr,
                     "progress: %.1fs states=%llu (%.0f/s) nodes=%llu "
                     "frontier=%llu depth=%d visited=%.1fMB\n",
                     S.Seconds,
                     static_cast<unsigned long long>(S.DistinctStates),
                     S.Seconds > 0
                         ? static_cast<double>(S.DistinctStates) / S.Seconds
                         : 0.0,
                     static_cast<unsigned long long>(S.NodesExplored),
                     static_cast<unsigned long long>(S.FrontierNodes),
                     S.MaxDepth, S.VisitedBytes / (1024.0 * 1024.0));
      };
    }
  };

  std::printf("== German's protocol: state growth with client count "
              "(workers=%d, 0=auto) ==\n",
              Workers);
  std::printf("  %-8s %-6s %-10s %-10s %s\n", "clients", "d", "states",
              "slices", "result");
  for (int N = 1; N <= 3; ++N) {
    CompiledProgram Prog = compileOrExit(corpus::german(N));
    for (int Delay = 0; Delay <= (N < 3 ? 1 : 0); ++Delay) {
      CheckOptions Opts;
      Opts.DelayBound = Delay;
      Opts.Workers = Workers;
      withObs(Opts);
      CheckResult R = check(Prog, Opts);
      bailIfInterrupted(R);
      if (Profile)
        std::fprintf(stderr, "# german clients=%d d=%d profile\n%s", N,
                     Delay, R.Profile.str(Prog).c_str());
      if (!ReportPath.empty()) {
        obs::Json Config = obs::Json::object();
        Config.set("program", "german");
        Config.set("clients", N);
        Config.set("delay_bound", Delay);
        Config.set("workers", Workers);
        RunRep.addCheckRun(Prog, std::move(Config), R);
      }
      std::printf("  %-8d %-6d %-10llu %-10llu %s\n", N, Delay,
                  static_cast<unsigned long long>(R.Stats.DistinctStates),
                  static_cast<unsigned long long>(R.Stats.Slices),
                  R.ErrorFound ? errorKindName(R.Error) : "clean");
    }
  }

  std::printf("\n== Seeded bug: home grants E without invalidating the "
              "owner ==\n");
  CompiledProgram Buggy = compileOrExit(
      corpus::german(2, corpus::GermanBug::SkipOwnerInvalidation));
  for (int Delay = 0; Delay <= 2; ++Delay) {
    // Event tracing is attached to the run that exposes the bug: the
    // recorder's merged ring becomes the JSONL/Chrome export below.
    obs::TraceRecorder Recorder;
    bool WantTrace = !TracePath.empty() || !ChromePath.empty();
    CheckOptions Opts;
    Opts.DelayBound = Delay;
    Opts.Workers = Workers;
    withObs(Opts);
    if (WantTrace)
      Opts.Trace = &Recorder;
    CheckResult R = check(Buggy, Opts);
    bailIfInterrupted(R);
    if (!ReportPath.empty()) {
      obs::Json Config = obs::Json::object();
      Config.set("program", "german_skip_owner_invalidation");
      Config.set("clients", 2);
      Config.set("delay_bound", Delay);
      Config.set("workers", Workers);
      Config.set("seeded_bug", true);
      RunRep.addCheckRun(Buggy, std::move(Config), R);
    }
    if (!R.ErrorFound) {
      std::printf("  d=%d: not exposed\n", Delay);
      continue;
    }
    std::printf("  d=%d: %s — %s\n", Delay, errorKindName(R.Error),
                R.ErrorMessage.c_str());
    size_t Start = R.Trace.size() > 10 ? R.Trace.size() - 10 : 0;
    for (size_t I = Start; I != R.Trace.size(); ++I)
      std::printf("    %s\n", R.Trace[I].c_str());

    if (!TracePath.empty()) {
      std::ofstream Out(TracePath);
      size_t Lines = obs::exportJsonl(Recorder.snapshot(), Out);
      std::printf("  trace: %zu events -> %s (dropped %llu)\n", Lines,
                  TracePath.c_str(),
                  static_cast<unsigned long long>(Recorder.dropped()));
    }
    if (!ChromePath.empty()) {
      std::ofstream Out(ChromePath);
      obs::exportChromeTrace(Recorder.snapshot(), Out, &Buggy);
      std::printf("  chrome trace -> %s (load in Perfetto or "
                  "chrome://tracing)\n",
                  ChromePath.c_str());
    }
    if (Msc) {
      std::printf("\n-- counterexample message-sequence chart --\n%s",
                  obs::renderScheduleMsc(Buggy, R.Schedule,
                                         Opts.UseModelBodies)
                      .c_str());
    }
    break;
  }

  if (Metrics)
    std::printf("\n-- metrics --\n%s", Registry.renderPrometheus().c_str());

  if (!ReportPath.empty() && !writeReportWithProbe(RunRep, ReportPath))
    return 1;

  std::printf("\ngerman_verify ok\n");
  return 0;
}
