//===- examples/elevator_sim.cpp - The paper's elevator, end to end ---------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The Section 2 elevator (Figures 1-2). This example
//   1. verifies the full model (ghost User/Door/Timer environment)
//      across delay bounds, reporting explored-state counts (the
//      Figure 7 quantity),
//   2. demonstrates that the verifier pinpoints a seeded defect with a
//      readable counterexample,
//   3. simulates the erased elevator interactively: the process plays
//      door/timer hardware and user, scripted here.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"
#include "host/Host.h"

#include <cstdio>

using namespace p;

static CompiledProgram compileOrExit(const std::string &Src,
                                     bool Erase = false) {
  LowerOptions Opts;
  Opts.EraseGhosts = Erase;
  CompileResult R = compileString(Src, Opts);
  if (!R.ok()) {
    std::fprintf(stderr, "compile error:\n%s", R.Diags.str().c_str());
    std::exit(1);
  }
  return std::move(*R.Program);
}

int main() {
  std::printf("== 1. Verify the elevator model ==\n");
  CompiledProgram Model = compileOrExit(corpus::elevator());
  std::printf("%s\n", Model.summary().c_str());
  for (int Delay = 0; Delay <= 4; ++Delay) {
    CheckOptions Opts;
    Opts.DelayBound = Delay;
    CheckResult R = check(Model, Opts);
    std::printf("  d=%d: %-9s states=%-7llu slices=%-8llu %.3fs\n", Delay,
                R.ErrorFound ? errorKindName(R.Error) : "clean",
                static_cast<unsigned long long>(R.Stats.DistinctStates),
                static_cast<unsigned long long>(R.Stats.Slices),
                R.Stats.Seconds);
  }

  std::printf("\n== 2. A seeded defect and its counterexample ==\n");
  CompiledProgram Buggy = compileOrExit(
      corpus::elevator(corpus::ElevatorBug::MissingDeferCloseDoor));
  for (int Delay = 0; Delay <= 2; ++Delay) {
    CheckOptions Opts;
    Opts.DelayBound = Delay;
    CheckResult R = check(Buggy, Opts);
    if (!R.ErrorFound)
      continue;
    std::printf("  found %s at delay bound %d (%llu states):\n",
                errorKindName(R.Error), Delay,
                static_cast<unsigned long long>(R.Stats.DistinctStates));
    size_t Start = R.Trace.size() > 8 ? R.Trace.size() - 8 : 0;
    if (Start)
      std::printf("    ... (%zu earlier steps)\n", Start);
    for (size_t I = Start; I != R.Trace.size(); ++I)
      std::printf("    %s\n", R.Trace[I].c_str());
    break;
  }

  std::printf("\n== 3. Run the erased elevator ==\n");
  CompiledProgram Driver = compileOrExit(corpus::elevator(), true);
  Host H(Driver);
  int32_t Id = H.createMachine("Elevator");

  struct { const char *Event; const char *Comment; } Script[] = {
      {"OpenDoor", "user presses open"},
      {"DoorOpened", "door hardware reports open"},
      {"TimerFired", "door-close timer expires"},
      {"CloseDoor", "user presses close"},
      {"OperationSuccess", "timer hardware confirms cancel"},
      {"DoorClosed", "door hardware reports closed"},
  };
  std::printf("  %-18s -> %s\n", "(created)",
              H.currentStateName(Id).c_str());
  for (const auto &Step : Script) {
    if (!H.addEvent(Id, Step.Event)) {
      std::fprintf(stderr, "error: %s\n", H.errorMessage().c_str());
      return 1;
    }
    std::printf("  %-18s -> %-22s (%s)\n", Step.Event,
                H.currentStateName(Id).c_str(), Step.Comment);
  }

  std::printf("\nelevator_sim ok\n");
  return 0;
}
