//===- examples/compile_to_c.cpp - The P compiler's C backend ---------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Compiles the Switch-and-LED driver (Section 4.1) to the C code of
// Section 4 and writes <out>/swled.{h,c}. Build the result with any C99
// compiler:
//
//   cc -I<out> -I src/codegen/c <out>/swled.c src/codegen/c/prt_runtime.c \
//      your_host_main.c
//
// Usage: example_compile_to_c [output-dir]   (default: current dir)
//
//===----------------------------------------------------------------------===//

#include "codegen/CCodeGen.h"
#include "corpus/Corpus.h"
#include "frontend/Frontend.h"

#include <cstdio>
#include <fstream>

using namespace p;

int main(int argc, char **argv) {
  std::string OutDir = argc > 1 ? argv[1] : ".";

  DiagnosticEngine Diags;
  Program Prog = parseAndAnalyze(corpus::switchLed(), Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    return 1;
  }

  CodegenOptions Opts;
  Opts.BaseName = "swled";
  CodegenResult R = generateC(Prog, Opts);
  if (!R.ok()) {
    for (const std::string &E : R.Errors)
      std::fprintf(stderr, "codegen error: %s\n", E.c_str());
    return 1;
  }

  std::string HeaderPath = OutDir + "/swled.h";
  std::string SourcePath = OutDir + "/swled.c";
  {
    std::ofstream H(HeaderPath);
    H << R.Header;
    std::ofstream C(SourcePath);
    C << R.Source;
  }

  std::printf("wrote %s (%zu bytes) and %s (%zu bytes)\n",
              HeaderPath.c_str(), R.Header.size(), SourcePath.c_str(),
              R.Source.size());
  std::printf("C runtime: %s/prt_runtime.{h,c}\n", cRuntimeDir().c_str());
  std::printf("\n--- %s ---\n%s", HeaderPath.c_str(), R.Header.c_str());
  return 0;
}
