//===- examples/quickstart.cpp - P in five minutes --------------------------===//
//
// Part of the P-language reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The end-to-end workflow of the paper in one file:
//   1. write a P program (a tiny request/response protocol with a ghost
//      environment),
//   2. verify it with the delay-bounded systematic tester (Section 5),
//   3. erase the ghosts and execute the real machines under the host
//      runtime (Section 4), with the "OS" injecting events.
//
// Build: cmake --build build --target example_quickstart
// Run:   ./build/examples/example_quickstart
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "frontend/Frontend.h"
#include "host/Host.h"

#include <cstdio>

using namespace p;

static const char *Source = R"(
// A server that owes every request exactly one response.
event Request(id);
event Response;
event Shutdown;

main ghost machine Environment {
  var ServerV: id;
  state Boot {
    entry {
      ServerV = new Server();
      raise(Response);
    }
    on Response goto Drive;
  }
  state Drive {
    entry {
      if (*) {
        send(ServerV, Request, this);
        raise(Response);
      } else {
        send(ServerV, Shutdown);
      }
    }
    on Response goto Drive;
  }
}

machine Server {
  var Served: int;
  state Running {
    entry { Served = 0; }
    on Request do Serve;
    on Shutdown goto Draining;
  }
  action Serve {
    Served = Served + 1;
    send(arg, Response);
  }
  state Draining {
    // Late requests during shutdown are still answered — the verifier
    // would flag them as unhandled otherwise (responsiveness!).
    entry { }
    on Request do Serve;
    on Shutdown do Ignore;
  }
  action Ignore { skip; }
}

// A real client the host wires in at execution time; during
// verification the ghost environment plays this role.
machine Client {
  var Got: int;
  state Waiting {
    entry { Got = 0; }
    on Response do Count;
  }
  action Count { Got = Got + 1; }
}
)";

int main() {
  // -- 1. Compile the full program (ghosts kept) for verification.
  CompileResult Verification = compileString(Source);
  if (!Verification.ok()) {
    std::fprintf(stderr, "compile error:\n%s",
                 Verification.Diags.str().c_str());
    return 1;
  }

  // -- 2. Systematic testing with the delaying scheduler.
  std::printf("== Verification (delay-bounded systematic testing) ==\n");
  for (int Delay = 0; Delay <= 3; ++Delay) {
    CheckOptions Opts;
    Opts.DelayBound = Delay;
    CheckResult R = check(*Verification.Program, Opts);
    std::printf("  delay bound %d: %s, %llu states, %llu slices\n", Delay,
                R.ErrorFound ? errorKindName(R.Error) : "no errors",
                static_cast<unsigned long long>(R.Stats.DistinctStates),
                static_cast<unsigned long long>(R.Stats.Slices));
    if (R.ErrorFound) {
      for (const auto &Line : R.Trace)
        std::printf("    %s\n", Line.c_str());
      return 1;
    }
  }

  // -- 3. Erase ghosts and execute for real.
  std::printf("\n== Execution (ghosts erased, host injects events) ==\n");
  LowerOptions Erase;
  Erase.EraseGhosts = true;
  CompileResult Execution = compileString(Source, Erase);
  Host H(*Execution.Program);
  int32_t Server = H.createMachine("Server");
  int32_t Client = H.createMachine("Client");
  std::printf("  created Server (id %d) in state %s, Client (id %d)\n",
              Server, H.currentStateName(Server).c_str(), Client);

  for (int I = 0; I != 3; ++I)
    H.addEvent(Server, "Request", Value::machine(Client));
  std::printf("  served %lld requests, client saw %lld responses\n",
              H.readVar(Server, "Served").asInt(),
              H.readVar(Client, "Got").asInt());

  H.addEvent(Server, "Shutdown");
  std::printf("  after Shutdown: state %s\n",
              H.currentStateName(Server).c_str());
  H.addEvent(Server, "Request", Value::machine(Client));
  std::printf("  late request still served: %lld responses total\n",
              H.readVar(Client, "Got").asInt());

  std::printf("\nquickstart ok\n");
  return H.hasError() ? 1 : 0;
}
